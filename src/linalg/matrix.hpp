// Dense row-major matrix over an arbitrary scalar (double or complex<double>).
//
// This is the numerical workhorse shared by the MNA circuit solver (real DC
// Jacobians, complex AC system matrices) and the neural-network library
// (weight matrices, batched activations). It is deliberately small: only the
// operations those clients need, with bounds checking in debug builds.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace trdse::linalg {

template <typename T>
class MatrixT {
 public:
  MatrixT() = default;
  MatrixT(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested braces: MatrixT<double>{{1,2},{3,4}}.
  MatrixT(std::initializer_list<std::initializer_list<T>> rows_init) {
    rows_ = rows_init.size();
    cols_ = rows_ == 0 ? 0 : rows_init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows_init) {
      assert(r.size() == cols_ && "ragged initializer");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(std::size_t r) { return data_.data() + r * cols_; }
  const T* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(std::size_t rows, std::size_t cols, T fill = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  MatrixT& operator+=(const MatrixT& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  MatrixT& operator-=(const MatrixT& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  MatrixT& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend bool operator==(const MatrixT&, const MatrixT&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Matrix = MatrixT<double>;
using ComplexMatrix = MatrixT<std::complex<double>>;
using Vector = std::vector<double>;
using ComplexVector = std::vector<std::complex<double>>;

/// y = A * x (dimensions must agree).
template <typename T>
std::vector<T> matVec(const MatrixT<T>& a, const std::vector<T>& x) {
  assert(a.cols() == x.size());
  std::vector<T> y(a.rows(), T{});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    T acc{};
    const T* ar = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) acc += ar[c] * x[c];
    y[r] = acc;
  }
  return y;
}

/// y = A^T * x.
template <typename T>
std::vector<T> matTVec(const MatrixT<T>& a, const std::vector<T>& x) {
  assert(a.rows() == x.size());
  std::vector<T> y(a.cols(), T{});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const T* ar = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += ar[c] * x[r];
  }
  return y;
}

/// C = A * B.
template <typename T>
MatrixT<T> matMul(const MatrixT<T>& a, const MatrixT<T>& b) {
  assert(a.cols() == b.rows());
  MatrixT<T> c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      const T* br = b.row(k);
      T* cr = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) cr[j] += aik * br[j];
    }
  }
  return c;
}

// ---- Small vector helpers shared across the project ----

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
double normInf(const Vector& a);
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
Vector scaled(const Vector& x, double alpha);
Vector add(const Vector& a, const Vector& b);
Vector sub(const Vector& a, const Vector& b);

}  // namespace trdse::linalg
