#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace trdse::linalg {

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double normInf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector scaled(const Vector& x, double alpha) {
  Vector y = x;
  for (double& v : y) v *= alpha;
  return y;
}

Vector add(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector y = a;
  for (std::size_t i = 0; i < b.size(); ++i) y[i] += b[i];
  return y;
}

Vector sub(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector y = a;
  for (std::size_t i = 0; i < b.size(); ++i) y[i] -= b[i];
  return y;
}

}  // namespace trdse::linalg
