// Shared complex helpers for the scalar and lane-blocked LU paths.
#pragma once

#include <cmath>
#include <complex>

namespace trdse::linalg {

/// Naive complex reciprocal: conj(z) / |z|^2, no Smith scaling. The plain
/// formula is a handful of mul/add ops that vectorize across lanes and — the
/// property the batched AC path depends on — is the *same* op sequence
/// whether computed on a std::complex or on split re/im planes. The tradeoff
/// is intermediate overflow/underflow of |z|^2 outside |z| in roughly
/// (1e-154, 1e154), far beyond any magnitude an MNA factorization with
/// partial pivoting produces. Both LuSolver<std::complex<double>> and the
/// lane-blocked complex LU in sim/op_batch.cpp divide by multiplying with
/// this reciprocal, keeping their per-lane arithmetic bitwise identical.
inline std::complex<double> cxReciprocal(const std::complex<double>& z) {
  const double d = z.real() * z.real() + z.imag() * z.imag();
  const double id = 1.0 / d;
  return {z.real() * id, -z.imag() * id};
}

/// Naive complex multiply written as explicit real arithmetic. std::complex
/// operator* must NOT be used in the bitwise-locked LU paths: GCC lowers it
/// to fused multiply-addsub instructions on FMA targets even under
/// -ffp-contract=off (the complex lowering pass pre-dates contraction
/// control), which rounds differently from the split re/im planes of the
/// lane-blocked solver. Spelling out the four products keeps every rounding
/// under the TU's contraction setting, identical on both paths. (This also
/// drops libgcc's __muldc3 NaN-recovery fallback — acceptable, as both paths
/// then agree even on non-finite operands.)
inline std::complex<double> cxMul(const std::complex<double>& a,
                                  const std::complex<double>& b) {
  return {a.real() * b.real() - a.imag() * b.imag(),
          a.real() * b.imag() + a.imag() * b.real()};
}

/// Pivot-selection magnitude: |re| + |im| (LAPACK's cabs1). Partial pivoting
/// only needs a magnitude *ordering*, not the Euclidean modulus, and the
/// 1-norm avoids a libm hypot call per candidate row — the pivot search is
/// the serial, non-vectorizable fraction of both the scalar and the
/// lane-blocked complex LU, so it sets the ceiling on the batch speedup.
/// Scalar LuSolver<std::complex<double>> and sim/op_batch.cpp must use this
/// same function so their pivot choices (and therefore every subsequent
/// rounding) stay bitwise identical.
inline double cxPivotMag(const std::complex<double>& z) {
  return std::abs(z.real()) + std::abs(z.imag());
}

}  // namespace trdse::linalg
