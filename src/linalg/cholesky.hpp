// Cholesky factorization for symmetric positive-definite systems — used by
// the Gaussian-process baseline (kernel matrix solves).
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace trdse::linalg {

class CholeskySolver {
 public:
  /// Factor A = L L^T; false when A is not (numerically) SPD.
  bool factor(const Matrix& a);

  /// Solve A x = b via the stored factor.
  Vector solve(const Vector& b) const;

  /// Solve L y = b (forward substitution only) — handy for GP variance.
  Vector solveLower(const Vector& b) const;

  bool factored() const { return factored_; }
  /// log(det(A)) = 2 * sum(log(L_ii)); only valid after factor().
  double logDet() const;

 private:
  Matrix l_;
  bool factored_ = false;
};

}  // namespace trdse::linalg
