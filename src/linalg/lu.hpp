// LU factorization with partial pivoting, templated over the scalar so the
// same code solves real Newton systems (DC operating point) and complex
// small-signal systems (AC sweep).
#pragma once

#include <complex>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace trdse::linalg {

/// In-place LU factorization with row pivoting. After a successful factor(),
/// solve() may be called any number of times with different right-hand sides.
template <typename T>
class LuSolver {
 public:
  LuSolver() = default;

  /// Factor A (copied). Returns false when A is numerically singular.
  bool factor(const MatrixT<T>& a);

  /// Solve A x = b using the stored factorization. Requires factor() == true.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Allocation-free solve: reads b[0..n), writes x[0..n). b and x may not
  /// alias. This is the Newton-loop entry point — factor() reuses the matrix
  /// capacity and solveInto touches no heap, so a factor+solve per iteration
  /// costs no allocations in steady state.
  void solveInto(const T* b, T* x) const;

  /// One-shot convenience: factor and solve; nullopt when singular.
  static std::optional<std::vector<T>> solveSystem(const MatrixT<T>& a,
                                                   const std::vector<T>& b);

  bool factored() const { return factored_; }
  std::size_t dim() const { return lu_.rows(); }

 private:
  MatrixT<T> lu_;
  std::vector<std::size_t> perm_;
  bool factored_ = false;
};

extern template class LuSolver<double>;
extern template class LuSolver<std::complex<double>>;

}  // namespace trdse::linalg
