#include "linalg/lu.hpp"

#include <cassert>
#include <cmath>
#include <type_traits>

#include "linalg/cxmath.hpp"

namespace trdse::linalg {

namespace {
double magnitude(double v) { return std::abs(v); }
// Complex pivots order by cabs1, matching the lane-blocked LU (cxmath.hpp).
double magnitude(const std::complex<double>& v) { return cxPivotMag(v); }
}  // namespace

template <typename T>
bool LuSolver<T>::factor(const MatrixT<T>& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  lu_ = a;
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  factored_ = false;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = magnitude(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = magnitude(lu_(r, k));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;  // numerically singular
    if (pivot != k) {
      std::swap(perm_[k], perm_[pivot]);
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
    }
    // No zero-skip on the elimination: performing the (mathematically inert)
    // update even when factor == 0 keeps the scalar op sequence identical to
    // the lane-blocked batched LU in sim/op_batch.cpp, which cannot branch
    // per lane. Complex pivots divide by multiplying with a shared naive
    // reciprocal for the same reason (and it is once per column, not per row).
    const T pivotVal = lu_(k, k);
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      const T invPivot = cxReciprocal(pivotVal);
      for (std::size_t r = k + 1; r < n; ++r) {
        const T factor = cxMul(lu_(r, k), invPivot);
        lu_(r, k) = factor;
        for (std::size_t c = k + 1; c < n; ++c)
          lu_(r, c) -= cxMul(factor, lu_(k, c));
      }
    } else {
      for (std::size_t r = k + 1; r < n; ++r) {
        const T factor = lu_(r, k) / pivotVal;
        lu_(r, k) = factor;
        for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
  factored_ = true;
  return true;
}

template <typename T>
void LuSolver<T>::solveInto(const T* b, T* x) const {
  assert(factored_);
  const std::size_t n = lu_.rows();
  // Forward substitution with permutation (L has unit diagonal). Complex
  // products go through cxMul — see the contraction note in cxmath.hpp.
  for (std::size_t i = 0; i < n; ++i) {
    T acc = b[perm_[i]];
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      for (std::size_t j = 0; j < i; ++j) acc -= cxMul(lu_(i, j), x[j]);
    } else {
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    }
    x[i] = acc;
  }
  // Back substitution (complex divides via the shared reciprocal — see the
  // note in factor()).
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      for (std::size_t j = ii + 1; j < n; ++j) acc -= cxMul(lu_(ii, j), x[j]);
      x[ii] = cxMul(acc, cxReciprocal(lu_(ii, ii)));
    } else {
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
      x[ii] = acc / lu_(ii, ii);
    }
  }
}

template <typename T>
std::vector<T> LuSolver<T>::solve(const std::vector<T>& b) const {
  assert(b.size() == lu_.rows());
  std::vector<T> x(b.size());
  solveInto(b.data(), x.data());
  return x;
}

template <typename T>
std::optional<std::vector<T>> LuSolver<T>::solveSystem(const MatrixT<T>& a,
                                                       const std::vector<T>& b) {
  LuSolver<T> s;
  if (!s.factor(a)) return std::nullopt;
  return s.solve(b);
}

template class LuSolver<double>;
template class LuSolver<std::complex<double>>;

}  // namespace trdse::linalg
