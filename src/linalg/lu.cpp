#include "linalg/lu.hpp"

#include <cassert>
#include <cmath>

namespace trdse::linalg {

namespace {
double magnitude(double v) { return std::abs(v); }
double magnitude(const std::complex<double>& v) { return std::abs(v); }
}  // namespace

template <typename T>
bool LuSolver<T>::factor(const MatrixT<T>& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  lu_ = a;
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  factored_ = false;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = magnitude(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = magnitude(lu_(r, k));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;  // numerically singular
    if (pivot != k) {
      std::swap(perm_[k], perm_[pivot]);
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
    }
    const T pivotVal = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const T factor = lu_(r, k) / pivotVal;
      lu_(r, k) = factor;
      if (factor == T{}) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
  factored_ = true;
  return true;
}

template <typename T>
std::vector<T> LuSolver<T>::solve(const std::vector<T>& b) const {
  assert(factored_);
  const std::size_t n = lu_.rows();
  assert(b.size() == n);
  std::vector<T> x(n);
  // Forward substitution with permutation (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    T acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

template <typename T>
std::optional<std::vector<T>> LuSolver<T>::solveSystem(const MatrixT<T>& a,
                                                       const std::vector<T>& b) {
  LuSolver<T> s;
  if (!s.factor(a)) return std::nullopt;
  return s.solve(b);
}

template class LuSolver<double>;
template class LuSolver<std::complex<double>>;

}  // namespace trdse::linalg
