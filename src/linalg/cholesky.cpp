#include "linalg/cholesky.hpp"

#include <cassert>
#include <cmath>

namespace trdse::linalg {

bool CholeskySolver::factor(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  l_.resize(n, n);
  factored_ = false;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (sum <= 0.0) return false;
        l_(i, i) = std::sqrt(sum);
      } else {
        l_(i, j) = sum / l_(j, j);
      }
    }
  }
  factored_ = true;
  return true;
}

Vector CholeskySolver::solveLower(const Vector& b) const {
  assert(factored_);
  const std::size_t n = l_.rows();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  return y;
}

Vector CholeskySolver::solve(const Vector& b) const {
  Vector y = solveLower(b);
  const std::size_t n = l_.rows();
  // Back substitution with L^T.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l_(k, ii) * y[k];
    y[ii] = sum / l_(ii, ii);
  }
  return y;
}

double CholeskySolver::logDet() const {
  assert(factored_);
  double s = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace trdse::linalg
