#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>

namespace trdse::linalg {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  // Population variance for n==1, sample variance otherwise.
  var /= static_cast<double>(samples.size() > 1 ? samples.size() - 1 : 1);
  s.stddev = std::sqrt(var);
  s.median = percentile(samples, 50.0);
  return s;
}

double percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = pct / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

void standardizeInPlace(std::vector<double>& values, double eps) {
  if (values.size() < 2) return;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  const double std = std::sqrt(var) + eps;
  for (double& v : values) v = (v - mean) / std;
}

void gaeScan(const std::vector<double>& rewards,
             const std::vector<double>& values,
             const std::vector<unsigned char>& done, double bootstrapValue,
             double gamma, double lambda, std::vector<double>& advantages,
             std::vector<double>& returns) {
  const std::size_t n = rewards.size();
  advantages.assign(n, 0.0);
  returns.assign(n, 0.0);
  double gae = 0.0;
  double nextValue = bootstrapValue;
  for (std::size_t ii = n; ii-- > 0;) {
    const double mask = done[ii] != 0 ? 0.0 : 1.0;
    const double delta = rewards[ii] + gamma * nextValue * mask - values[ii];
    gae = delta + gamma * lambda * mask * gae;
    advantages[ii] = gae;
    returns[ii] = gae + values[ii];
    nextValue = values[ii];
  }
}

}  // namespace trdse::linalg
