// Summary statistics used by the benchmark harness to report the
// mean/min/max/stddev rows the paper's tables contain.
#pragma once

#include <cstddef>
#include <vector>

namespace trdse::linalg {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Compute the summary of a sample; empty input yields a zeroed Summary.
Summary summarize(const std::vector<double>& samples);

/// Percentile in [0,100] with linear interpolation; empty input yields 0.
double percentile(std::vector<double> samples, double pct);

}  // namespace trdse::linalg
