// Summary statistics used by the benchmark harness to report the
// mean/min/max/stddev rows the paper's tables contain.
#pragma once

#include <cstddef>
#include <vector>

namespace trdse::linalg {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Compute the summary of a sample; empty input yields a zeroed Summary.
Summary summarize(const std::vector<double>& samples);

/// Percentile in [0,100] with linear interpolation; empty input yields 0.
double percentile(std::vector<double> samples, double pct);

/// In-place standardization to zero mean / unit variance over the whole
/// vector (population variance, two-pass). `eps` is added to the standard
/// deviation to keep constant inputs finite. Inputs shorter than 2 are left
/// untouched.
void standardizeInPlace(std::vector<double>& values, double eps);

/// Reverse generalized-advantage-estimation scan over parallel transition
/// arrays (the RL trainers' advantage computation, kept here so the batched
/// and per-sample paths share one kernel).
///
/// For t from n-1 down to 0, with mask = done[t] ? 0 : 1:
///   delta  = rewards[t] + gamma * nextValue * mask - values[t]
///   gae    = delta + gamma * lambda * mask * gae
///   adv[t] = gae;  ret[t] = gae + values[t]
/// where nextValue starts at `bootstrapValue` and becomes values[t] after
/// each step. `done[t] != 0` marks an episode boundary (resets the tail).
void gaeScan(const std::vector<double>& rewards,
             const std::vector<double>& values,
             const std::vector<unsigned char>& done, double bootstrapValue,
             double gamma, double lambda, std::vector<double>& advantages,
             std::vector<double>& returns);

}  // namespace trdse::linalg
