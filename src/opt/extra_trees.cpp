#include "opt/extra_trees.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace trdse::opt {

ExtraTreesRegressor::ExtraTreesRegressor(ExtraTreesConfig config)
    : config_(config) {}

namespace {

double meanOf(const std::vector<double>& y, const std::vector<std::size_t>& idx,
              std::size_t begin, std::size_t end) {
  double s = 0.0;
  for (std::size_t i = begin; i < end; ++i) s += y[idx[i]];
  return s / static_cast<double>(end - begin);
}

double sseOf(const std::vector<double>& y, const std::vector<std::size_t>& idx,
             std::size_t begin, std::size_t end) {
  const double m = meanOf(y, idx, begin, end);
  double s = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double d = y[idx[i]] - m;
    s += d * d;
  }
  return s;
}

}  // namespace

std::size_t ExtraTreesRegressor::buildNode(
    Tree& tree, const std::vector<linalg::Vector>& x,
    const std::vector<double>& y, std::vector<std::size_t>& indices,
    std::size_t begin, std::size_t end, std::size_t depth,
    std::mt19937_64& rng) {
  const std::size_t nodeIdx = tree.nodes.size();
  tree.nodes.emplace_back();

  const std::size_t count = end - begin;
  if (count <= config_.minLeafSize || depth >= config_.maxDepth) {
    tree.nodes[nodeIdx].value = meanOf(y, indices, begin, end);
    return nodeIdx;
  }

  // Extremely randomized split: a handful of random (feature, threshold)
  // candidates scored by SSE reduction; best wins.
  const std::size_t dim = x[indices[begin]].size();
  int bestFeature = -1;
  double bestThreshold = 0.0;
  double bestScore = std::numeric_limits<double>::infinity();
  std::uniform_int_distribution<std::size_t> featDist(0, dim - 1);
  for (std::size_t trial = 0; trial < config_.splitTrials; ++trial) {
    const std::size_t f = featDist(rng);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t i = begin; i < end; ++i) {
      lo = std::min(lo, x[indices[i]][f]);
      hi = std::max(hi, x[indices[i]][f]);
    }
    if (hi <= lo) continue;
    std::uniform_real_distribution<double> thrDist(lo, hi);
    const double thr = thrDist(rng);
    // Partition-free scoring pass.
    double sumL = 0.0;
    double sumL2 = 0.0;
    double sumR = 0.0;
    double sumR2 = 0.0;
    std::size_t nL = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const double yi = y[indices[i]];
      if (x[indices[i]][f] < thr) {
        sumL += yi;
        sumL2 += yi * yi;
        ++nL;
      } else {
        sumR += yi;
        sumR2 += yi * yi;
      }
    }
    const std::size_t nR = count - nL;
    if (nL == 0 || nR == 0) continue;
    const double sseL = sumL2 - sumL * sumL / static_cast<double>(nL);
    const double sseR = sumR2 - sumR * sumR / static_cast<double>(nR);
    const double score = sseL + sseR;
    if (score < bestScore) {
      bestScore = score;
      bestFeature = static_cast<int>(f);
      bestThreshold = thr;
    }
  }

  if (bestFeature < 0) {
    tree.nodes[nodeIdx].value = meanOf(y, indices, begin, end);
    return nodeIdx;
  }

  const auto mid = std::partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end), [&](std::size_t i) {
        return x[i][static_cast<std::size_t>(bestFeature)] < bestThreshold;
      });
  const std::size_t midIdx =
      static_cast<std::size_t>(mid - indices.begin());
  if (midIdx == begin || midIdx == end) {
    tree.nodes[nodeIdx].value = meanOf(y, indices, begin, end);
    return nodeIdx;
  }

  const std::size_t left =
      buildNode(tree, x, y, indices, begin, midIdx, depth + 1, rng);
  const std::size_t right =
      buildNode(tree, x, y, indices, midIdx, end, depth + 1, rng);
  Node& node = tree.nodes[nodeIdx];
  node.feature = bestFeature;
  node.threshold = bestThreshold;
  node.left = left;
  node.right = right;
  return nodeIdx;
}

void ExtraTreesRegressor::fit(const std::vector<linalg::Vector>& x,
                              const std::vector<double>& y, std::uint64_t seed) {
  assert(x.size() == y.size() && !x.empty());
  trees_.clear();
  trees_.resize(config_.numTrees);
  std::mt19937_64 rng(seed);
  for (auto& tree : trees_) {
    std::vector<std::size_t> indices(x.size());
    std::iota(indices.begin(), indices.end(), 0);
    buildNode(tree, x, y, indices, 0, indices.size(), 0, rng);
  }
  (void)sseOf;  // silence unused in release
}

double ExtraTreesRegressor::predictTree(const Tree& tree,
                                        const linalg::Vector& x) const {
  std::size_t idx = 0;
  while (tree.nodes[idx].feature >= 0) {
    const Node& n = tree.nodes[idx];
    idx = (x[static_cast<std::size_t>(n.feature)] < n.threshold) ? n.left : n.right;
  }
  return tree.nodes[idx].value;
}

Prediction ExtraTreesRegressor::predict(const linalg::Vector& x) const {
  assert(fitted());
  Prediction p;
  double sum = 0.0;
  double sum2 = 0.0;
  for (const auto& tree : trees_) {
    const double v = predictTree(tree, x);
    sum += v;
    sum2 += v * v;
  }
  const double n = static_cast<double>(trees_.size());
  p.mean = sum / n;
  const double var = std::max(0.0, sum2 / n - p.mean * p.mean);
  p.std = std::sqrt(var);
  return p;
}

}  // namespace trdse::opt
