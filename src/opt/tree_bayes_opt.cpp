#include "opt/tree_bayes_opt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace trdse::opt {

TreeBayesOpt::TreeBayesOpt(core::SizingProblem problem,
                           TreeBayesOptConfig config, std::size_t budget)
    : problem_(std::move(problem)),
      config_(config),
      value_(problem_.measurementNames, problem_.specs),
      engine_(problem_),
      rng_(config.seed),
      budget_(budget),
      gauss_(0.0, config.localSigma) {}

bool TreeBayesOpt::finished() const {
  return phase_ == Phase::kDone || result_.solved ||
         (budget_ > 0 && result_.iterations >= budget_);
}

const StrategyOutcome& TreeBayesOpt::harvest() {
  result_.evalStats = engine_.stats();
  // The ledger grows with the budget; snapshot it once, at the end.
  if (finished()) result_.ledger = engine_.ledger();
  return result_;
}

void TreeBayesOpt::observe(const linalg::Vector& rawSizes) {
  const auto& space = problem_.space;
  const double nSpecs = static_cast<double>(problem_.specs.size());
  const double failTarget = -config_.failedPenaltyPerSpec * nSpecs;

  const linalg::Vector sizes = space.snap(rawSizes);
  // Worst value across all sign-off corners, with the pre-refactor early
  // exits: the total budget caps the sweep, and a hard simulation failure
  // dominates. Each check is one logical engine request.
  double worst = 0.0;
  linalg::Vector meas;
  for (std::size_t c = 0; c < problem_.corners.size(); ++c) {
    if (result_.iterations >= budget_) break;
    const core::EvalResult r =
        engine_.evalOne(c, sizes, pvt::BlockKind::kSearch);
    ++result_.iterations;
    const double v = value_.valueOf(r);
    if (v < worst) {
      worst = v;
      if (r.ok) meas = r.measurements;
    } else if (meas.empty() && r.ok) {
      meas = r.measurements;
    }
    if (v <= core::kFailedValue) break;  // hard failure dominates
  }

  const double target = worst <= core::kFailedValue ? failTarget : worst;
  xs_.push_back(space.toUnit(sizes));
  ys_.push_back(target);
  if (worst > result_.bestValue) {
    result_.bestValue = worst;
    result_.sizes = sizes;
    result_.bestMeasurements = meas;
    bestUnit_ = xs_.back();
  }
  if (worst >= 0.0) {
    result_.solved = true;
    result_.sizes = sizes;
  }
}

const StrategyOutcome& TreeBayesOpt::step(std::size_t target) {
  target = std::min(target, budget_);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const auto& space = problem_.space;

  while (phase_ != Phase::kDone && !result_.solved &&
         result_.iterations < target) {
    if (phase_ == Phase::kInitSample) {
      if (initDone_ >= config_.initSamples) {  // covers initSamples == 0
        phase_ = Phase::kBoLoop;
        continue;
      }
      observe(space.randomPoint(rng_));
      ++initDone_;
      continue;
    }

    // ---- One BO iteration: (re)fit, acquire, observe. ----
    const std::size_t refitGap = std::max<std::size_t>(
        1, xs_.size() / std::max<std::size_t>(1, config_.refitDivisor));
    if (!model_.fitted() || xs_.size() - lastFitSize_ >= refitGap) {
      model_.fit(xs_, ys_, config_.seed + result_.iterations);
      lastFitSize_ = xs_.size();
    }

    // Dynamic exploration/exploitation balance: kappa decays with the share
    // of the *total* budget consumed (slice-invariant by construction).
    const double progress = static_cast<double>(result_.iterations) /
                            static_cast<double>(budget_);
    const double kappa =
        config_.kappaStart + (config_.kappaEnd - config_.kappaStart) * progress;

    linalg::Vector bestCand;
    double bestAcq = -std::numeric_limits<double>::infinity();
    const std::size_t nLocal = static_cast<std::size_t>(
        config_.localFraction * static_cast<double>(config_.candidatePool));
    for (std::size_t c = 0; c < config_.candidatePool; ++c) {
      linalg::Vector u(space.dim());
      if (c < nLocal && !bestUnit_.empty()) {
        for (std::size_t d = 0; d < space.dim(); ++d)
          u[d] = std::clamp(bestUnit_[d] + gauss_(rng_), 0.0, 1.0);
      } else {
        for (std::size_t d = 0; d < space.dim(); ++d) u[d] = unif(rng_);
      }
      const Prediction p = model_.predict(u);
      const double acq = p.mean + kappa * p.std;
      if (acq > bestAcq) {
        bestAcq = acq;
        bestCand = u;
      }
    }
    if (bestCand.empty()) {
      phase_ = Phase::kDone;  // empty candidate pool: nothing left to try
      break;
    }
    observe(space.fromUnit(bestCand));
  }
  return harvest();
}

const StrategyOutcome& TreeBayesOpt::run(std::size_t maxSimulations) {
  if (maxSimulations > budget_) budget_ = maxSimulations;
  return step(maxSimulations);
}

}  // namespace trdse::opt
