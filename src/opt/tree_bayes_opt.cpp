#include "opt/tree_bayes_opt.hpp"

#include <algorithm>
#include <cmath>

namespace trdse::opt {

TreeBayesOpt::TreeBayesOpt(const core::SizingProblem& problem,
                           TreeBayesOptConfig config)
    : problem_(problem),
      config_(config),
      value_(problem.measurementNames, problem.specs),
      rng_(config.seed) {}

double TreeBayesOpt::evaluateAllCorners(const linalg::Vector& sizes,
                                        TreeBayesOptOutcome& out,
                                        std::size_t maxSimulations,
                                        linalg::Vector* worstMeas) {
  double worst = 0.0;
  for (const auto& corner : problem_.corners) {
    if (out.iterations >= maxSimulations) break;
    const core::EvalResult r = problem_.evaluate(sizes, corner);
    ++out.iterations;
    const double v = value_.valueOf(r);
    if (v < worst) {
      worst = v;
      if (worstMeas != nullptr && r.ok) *worstMeas = r.measurements;
    } else if (worstMeas != nullptr && worstMeas->empty() && r.ok) {
      *worstMeas = r.measurements;
    }
    if (v <= core::kFailedValue) break;  // hard failure dominates
  }
  return worst;
}

TreeBayesOptOutcome TreeBayesOpt::run(std::size_t maxSimulations) {
  TreeBayesOptOutcome out;
  const auto& space = problem_.space;
  const double nSpecs = static_cast<double>(problem_.specs.size());
  const double failTarget = -config_.failedPenaltyPerSpec * nSpecs;

  std::vector<linalg::Vector> xs;      // unit-space inputs
  std::vector<double> ys;              // observed worst-corner values
  linalg::Vector bestUnit;

  auto observe = [&](const linalg::Vector& rawSizes) {
    const linalg::Vector sizes = space.snap(rawSizes);
    linalg::Vector meas;
    const double v =
        evaluateAllCorners(sizes, out, maxSimulations, &meas);
    const double target = v <= core::kFailedValue ? failTarget : v;
    xs.push_back(space.toUnit(sizes));
    ys.push_back(target);
    if (v > out.bestValue) {
      out.bestValue = v;
      out.sizes = sizes;
      out.bestMeasurements = meas;
      bestUnit = xs.back();
    }
    if (v >= 0.0) {
      out.solved = true;
      out.sizes = sizes;
    }
    return v;
  };

  for (std::size_t i = 0; i < config_.initSamples; ++i) {
    if (out.iterations >= maxSimulations || out.solved) return out;
    observe(space.randomPoint(rng_));
  }

  ExtraTreesRegressor model;
  std::normal_distribution<double> gauss(0.0, config_.localSigma);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::size_t lastFitSize = 0;

  while (out.iterations < maxSimulations && !out.solved) {
    const std::size_t refitGap =
        std::max<std::size_t>(1, xs.size() / std::max<std::size_t>(1, config_.refitDivisor));
    if (!model.fitted() || xs.size() - lastFitSize >= refitGap) {
      model.fit(xs, ys, config_.seed + out.iterations);
      lastFitSize = xs.size();
    }

    // Dynamic exploration/exploitation balance: kappa decays with budget.
    const double progress =
        static_cast<double>(out.iterations) / static_cast<double>(maxSimulations);
    const double kappa =
        config_.kappaStart + (config_.kappaEnd - config_.kappaStart) * progress;

    linalg::Vector bestCand;
    double bestAcq = -std::numeric_limits<double>::infinity();
    const std::size_t nLocal = static_cast<std::size_t>(
        config_.localFraction * static_cast<double>(config_.candidatePool));
    for (std::size_t c = 0; c < config_.candidatePool; ++c) {
      linalg::Vector u(space.dim());
      if (c < nLocal && !bestUnit.empty()) {
        for (std::size_t d = 0; d < space.dim(); ++d)
          u[d] = std::clamp(bestUnit[d] + gauss(rng_), 0.0, 1.0);
      } else {
        for (std::size_t d = 0; d < space.dim(); ++d) u[d] = unif(rng_);
      }
      const Prediction p = model.predict(u);
      const double acq = p.mean + kappa * p.std;
      if (acq > bestAcq) {
        bestAcq = acq;
        bestCand = u;
      }
    }
    if (bestCand.empty()) break;
    observe(space.fromUnit(bestCand));
  }
  return out;
}

}  // namespace trdse::opt
