// Gaussian-process regressor with an RBF kernel — the *conventional* BO
// surrogate the paper's customized BO replaces. Included so the scalability
// claim (cubic growth in the sample count versus the forest's n log n) can be
// measured rather than cited; see bench/abl_bo.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "opt/extra_trees.hpp"  // Prediction

namespace trdse::opt {

struct GpConfig {
  double lengthScale = 0.2;  ///< RBF length scale in unit coordinates
  double signalVar = 1.0;
  double noiseVar = 1e-4;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpConfig config = {});

  /// Fit on unit-space rows; O(n^3) Cholesky of the kernel matrix. Returns
  /// false when the kernel matrix is numerically indefinite.
  bool fit(const std::vector<linalg::Vector>& x, const std::vector<double>& y);

  bool fitted() const { return fitted_; }
  std::size_t sampleCount() const { return x_.size(); }

  /// Posterior mean and standard deviation; O(n) / O(n^2) per query.
  Prediction predict(const linalg::Vector& x) const;

 private:
  double kernel(const linalg::Vector& a, const linalg::Vector& b) const;

  GpConfig config_;
  std::vector<linalg::Vector> x_;
  linalg::Vector alpha_;  ///< K^{-1} (y - mean)
  double yMean_ = 0.0;
  linalg::CholeskySolver chol_;
  bool fitted_ = false;
};

}  // namespace trdse::opt
