// Extremely-randomized-trees regressor (Geurts et al., 2006).
//
// The paper's "customized BO" replaces the usual Gaussian process with an
// extra-tree regressor to dodge the GP's cubic sample scaling. Each tree
// draws a random feature and a random threshold per split; the ensemble mean
// is the prediction and the across-tree spread is the uncertainty the
// acquisition function exploits.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "linalg/matrix.hpp"

namespace trdse::opt {

struct ExtraTreesConfig {
  std::size_t numTrees = 30;
  std::size_t minLeafSize = 3;
  std::size_t maxDepth = 18;
  std::size_t splitTrials = 8;  ///< random (feature, threshold) pairs per node
};

struct Prediction {
  double mean = 0.0;
  double std = 0.0;
};

class ExtraTreesRegressor {
 public:
  explicit ExtraTreesRegressor(ExtraTreesConfig config = {});

  /// Fit on rows of `x` (all same dimension) against targets `y`.
  void fit(const std::vector<linalg::Vector>& x, const std::vector<double>& y,
           std::uint64_t seed);

  bool fitted() const { return !trees_.empty(); }

  Prediction predict(const linalg::Vector& x) const;

 private:
  struct Node {
    // Leaf when feature < 0.
    int feature = -1;
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    double value = 0.0;  ///< leaf mean
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  std::size_t buildNode(Tree& tree, const std::vector<linalg::Vector>& x,
                        const std::vector<double>& y,
                        std::vector<std::size_t>& indices, std::size_t begin,
                        std::size_t end, std::size_t depth, std::mt19937_64& rng);

  double predictTree(const Tree& tree, const linalg::Vector& x) const;

  ExtraTreesConfig config_;
  std::vector<Tree> trees_;
};

}  // namespace trdse::opt
