// Uniform random search over the design-space grid — the paper's strongest
// model-free baseline in Table I (100% success in 8565 average iterations on
// the 45nm opamp) and the failing baseline of Table III's PVT task.
#pragma once

#include <random>

#include "core/problem.hpp"
#include "core/value.hpp"

namespace trdse::opt {

struct RandomSearchOutcome {
  bool solved = false;
  std::size_t iterations = 0;  ///< SPICE simulations consumed
  linalg::Vector sizes;
  double bestValue = core::kFailedValue;
};

class RandomSearch {
 public:
  RandomSearch(const core::SizingProblem& problem, std::uint64_t seed);

  /// Sample random grid points until every corner passes or the budget is
  /// spent. Corners are checked sequentially per point with early exit, each
  /// check costing one simulation (EDA-block accounting).
  RandomSearchOutcome run(std::size_t maxSimulations);

 private:
  const core::SizingProblem& problem_;
  core::ValueFunction value_;
  std::mt19937_64 rng_;
};

}  // namespace trdse::opt
