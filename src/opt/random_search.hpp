// Uniform random search over the design-space grid — the paper's strongest
// model-free baseline in Table I (100% success in 8565 average iterations on
// the 45nm opamp) and the failing baseline of Table III's PVT task.
//
// Engine-backed and step()-resumable (see opt/strategy.hpp): every corner
// check is one logical request through an EvalEngine, so the ledger,
// EvalStats and the `iterations` budget count are a single source of truth
// (ledger.totalBlocks() == iterations always), and the seeded trajectory is
// bitwise identical to the original hand-rolled evaluation loop.
#pragma once

#include <random>

#include "core/problem.hpp"
#include "core/value.hpp"
#include "opt/strategy.hpp"

namespace trdse::io {
class CheckpointReader;
class CheckpointWriter;
}  // namespace trdse::io

namespace trdse::opt {

/// Random search emits the common outcome schema.
using RandomSearchOutcome = StrategyOutcome;

class RandomSearch final : public Strategy {
 public:
  /// The problem is copied (callbacks + metadata), so temporaries are safe.
  /// `budget` fixes the total simulation allowance; 0 defers it to the first
  /// run(maxSimulations) call (the legacy single-shot surface).
  RandomSearch(core::SizingProblem problem, std::uint64_t seed,
               std::size_t budget = 0);

  std::string_view name() const override { return "random_search"; }
  std::size_t budget() const override { return budget_; }

  /// Sample random grid points until every corner passes or the cumulative
  /// budget target is reached. Corners are checked sequentially per point
  /// with early exit, each check costing one logical simulation (EDA-block
  /// accounting). A slice boundary pauses *inside* a corner sweep and the
  /// next step() resumes it, so sliced and single-shot runs are bitwise
  /// identical.
  const StrategyOutcome& step(std::size_t target) override;

  using Strategy::run;
  /// Legacy single-shot surface: raises the budget to `maxSimulations` (when
  /// larger) and advances to completion.
  const StrategyOutcome& run(std::size_t maxSimulations);

  const StrategyOutcome& outcome() const override { return result_; }
  bool finished() const override;
  eval::EvalEngine& engine() override { return engine_; }

  /// Checkpointable: RNG stream, sweep position, outcome, and the engine's
  /// memo/ledger/stats all snapshot (checkpoint kind "random-search").
  bool supportsCheckpoint() const override { return true; }
  void saveCheckpoint(const std::string& path) const override;
  void restoreCheckpoint(const std::string& path) override;
  std::string saveCheckpointBlob() const override;
  void restoreCheckpointBlob(const std::string& blob,
                             const std::string& source) override;

  /// Stream-free composition (orchestrator checkpoints).
  void save(io::CheckpointWriter& w) const;
  void restore(const io::CheckpointReader& r);

 private:
  /// restore() body; restore() wraps it to reset on failure.
  void restoreSections(const io::CheckpointReader& r);

  core::SizingProblem problem_;
  core::ValueFunction value_;
  eval::EvalEngine engine_;
  std::mt19937_64 rng_;
  std::uint64_t seed_ = 0;
  std::size_t budget_ = 0;

  // ---- Resumable sweep state ----
  bool havePoint_ = false;     ///< mid-sweep: x_/cornerPos_/worst_ are live
  linalg::Vector x_;           ///< point under evaluation
  std::size_t cornerPos_ = 0;  ///< next corner to check on x_
  double worst_ = 0.0;         ///< min corner value seen on x_
  StrategyOutcome result_;
};

}  // namespace trdse::opt
