#include "opt/random_search.hpp"

namespace trdse::opt {

RandomSearch::RandomSearch(const core::SizingProblem& problem, std::uint64_t seed)
    : problem_(problem),
      value_(problem.measurementNames, problem.specs),
      rng_(seed) {}

RandomSearchOutcome RandomSearch::run(std::size_t maxSimulations) {
  RandomSearchOutcome out;
  while (out.iterations < maxSimulations) {
    const linalg::Vector x = problem_.space.randomPoint(rng_);
    bool allPass = true;
    double worst = 0.0;
    for (const auto& corner : problem_.corners) {
      if (out.iterations >= maxSimulations) return out;
      const core::EvalResult r = problem_.evaluate(x, corner);
      ++out.iterations;
      const double v = value_.valueOf(r);
      worst = std::min(worst, v);
      if (!r.ok || !value_.satisfied(r.measurements)) {
        allPass = false;
        break;  // early exit: no need to burn blocks on remaining corners
      }
    }
    if (worst > out.bestValue) {
      out.bestValue = worst;
      out.sizes = x;
    }
    if (allPass) {
      out.solved = true;
      out.sizes = x;
      return out;
    }
  }
  return out;
}

}  // namespace trdse::opt
