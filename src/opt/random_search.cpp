#include "opt/random_search.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/checkpoint.hpp"
#include "io/state_io.hpp"

namespace trdse::opt {

namespace {
constexpr char kCheckpointKind[] = "random-search";
}  // namespace

RandomSearch::RandomSearch(core::SizingProblem problem, std::uint64_t seed,
                           std::size_t budget)
    : problem_(std::move(problem)),
      value_(problem_.measurementNames, problem_.specs),
      engine_(problem_),
      rng_(seed),
      seed_(seed),
      budget_(budget) {}

bool RandomSearch::finished() const {
  return result_.solved || (budget_ > 0 && result_.iterations >= budget_);
}

const StrategyOutcome& RandomSearch::step(std::size_t target) {
  target = std::min(target, budget_);
  const auto harvest = [this]() -> const StrategyOutcome& {
    result_.evalStats = engine_.stats();
    // The ledger grows with the budget; snapshot it once, at the end.
    if (finished()) result_.ledger = engine_.ledger();
    return result_;
  };

  while (true) {
    if (!havePoint_) {
      // Outer gate: a new point starts only while the target allows it (the
      // original loop's `iterations < maxSimulations` condition).
      if (result_.solved || result_.iterations >= target) break;
      x_ = problem_.space.randomPoint(rng_);
      cornerPos_ = 0;
      worst_ = 0.0;
      havePoint_ = true;
    }
    // Sequential corner sweep with early exit; every check is one logical
    // engine request. Budget checks sit exactly where the original
    // single-pass loop had them (before each corner evaluation).
    bool failed = false;
    while (cornerPos_ < problem_.corners.size()) {
      if (result_.iterations >= budget_) {
        // Total budget exhausted mid-sweep: like the pre-refactor loop, the
        // partial point is abandoned without a best-value update.
        havePoint_ = false;
        return harvest();
      }
      if (result_.iterations >= target) return harvest();  // pause; resumes
      const core::EvalResult r =
          engine_.evalOne(cornerPos_, x_, pvt::BlockKind::kSearch);
      ++result_.iterations;
      const double v = value_.valueOf(r);
      worst_ = std::min(worst_, v);
      if (!r.ok || !value_.satisfied(r.measurements)) {
        failed = true;
        break;  // early exit: no need to burn blocks on remaining corners
      }
      ++cornerPos_;
    }
    havePoint_ = false;
    if (worst_ > result_.bestValue) {
      result_.bestValue = worst_;
      result_.sizes = x_;
    }
    if (!failed) {
      result_.solved = true;
      result_.sizes = x_;
      return harvest();
    }
  }
  return harvest();
}

const StrategyOutcome& RandomSearch::run(std::size_t maxSimulations) {
  if (maxSimulations > budget_) budget_ = maxSimulations;
  return step(maxSimulations);
}

void RandomSearch::save(io::CheckpointWriter& w) const {
  io::SectionWriter& cfg = w.section("config");
  cfg.str(problem_.name);
  cfg.u64(problem_.space.dim());
  cfg.u64(problem_.corners.size());
  cfg.u64(budget_);

  io::SectionWriter& st = w.section("state");
  io::writeRng(st, rng_);
  st.boolean(havePoint_);
  st.vec(x_);
  st.u64(cornerPos_);
  st.f64(worst_);
  st.boolean(result_.solved);
  st.u64(result_.iterations);
  st.vec(result_.sizes);
  st.f64(result_.bestValue);
  st.vec(result_.bestMeasurements);

  engine_.saveState(w.section("engine"));
}

void RandomSearch::restore(const io::CheckpointReader& r) {
  try {
    restoreSections(r);
  } catch (...) {
    // Never leave the strategy half-restored: reset to the freshly-seeded
    // state (a caller that catches the error and runs anyway gets a clean
    // search), then rethrow.
    rng_.seed(seed_);
    havePoint_ = false;
    x_ = linalg::Vector{};
    cornerPos_ = 0;
    worst_ = 0.0;
    result_ = StrategyOutcome{};
    engine_.clearCache();
    engine_.resetAccounting();
    throw;
  }
}

void RandomSearch::restoreSections(const io::CheckpointReader& r) {
  r.expectKind(kCheckpointKind);

  io::SectionReader cfg = r.section("config");
  const std::string name = cfg.str();
  if (name != problem_.name)
    cfg.fail("checkpoint was taken on problem \"" + name +
             "\", restoring into \"" + problem_.name + "\"");
  if (cfg.u64() != problem_.space.dim())
    cfg.fail("design-space dimensionality mismatch");
  if (cfg.u64() != problem_.corners.size()) cfg.fail("corner count mismatch");
  const std::uint64_t budget = cfg.u64();
  cfg.expectEnd();

  io::SectionReader st = r.section("state");
  io::readRng(st, rng_);
  havePoint_ = st.boolean();
  x_ = st.vec();
  cornerPos_ = st.u64();
  worst_ = st.f64();
  result_ = StrategyOutcome{};
  result_.solved = st.boolean();
  result_.iterations = st.u64();
  result_.sizes = st.vec();
  result_.bestValue = st.f64();
  result_.bestMeasurements = st.vec();
  st.expectEnd();
  if (havePoint_ && (x_.size() != problem_.space.dim() ||
                     cornerPos_ >= problem_.corners.size()))
    st.fail("mid-sweep state is inconsistent with the problem shape");

  io::SectionReader eng = r.section("engine");
  engine_.restoreState(eng);
  eng.expectEnd();

  budget_ = budget;
  result_.ledger = engine_.ledger();
  result_.evalStats = engine_.stats();
}

void RandomSearch::saveCheckpoint(const std::string& path) const {
  io::CheckpointWriter w(kCheckpointKind);
  save(w);
  w.writeFile(path);
}

void RandomSearch::restoreCheckpoint(const std::string& path) {
  restore(io::CheckpointReader::fromFile(path));
}

std::string RandomSearch::saveCheckpointBlob() const {
  io::CheckpointWriter w(kCheckpointKind);
  save(w);
  return w.finish();
}

void RandomSearch::restoreCheckpointBlob(const std::string& blob,
                                         const std::string& source) {
  restore(io::CheckpointReader(source, blob));
}

}  // namespace trdse::opt
