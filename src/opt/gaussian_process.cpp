#include "opt/gaussian_process.hpp"

#include <cassert>
#include <cmath>

namespace trdse::opt {

GaussianProcess::GaussianProcess(GpConfig config) : config_(config) {}

double GaussianProcess::kernel(const linalg::Vector& a,
                               const linalg::Vector& b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return config_.signalVar *
         std::exp(-0.5 * d2 / (config_.lengthScale * config_.lengthScale));
}

bool GaussianProcess::fit(const std::vector<linalg::Vector>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size() && !x.empty());
  x_ = x;
  fitted_ = false;
  const std::size_t n = x.size();
  yMean_ = 0.0;
  for (double v : y) yMean_ += v;
  yMean_ /= static_cast<double>(n);

  linalg::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(x[i], x[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += config_.noiseVar;
  }
  if (!chol_.factor(k)) return false;
  linalg::Vector centred(n);
  for (std::size_t i = 0; i < n; ++i) centred[i] = y[i] - yMean_;
  alpha_ = chol_.solve(centred);
  fitted_ = true;
  return true;
}

Prediction GaussianProcess::predict(const linalg::Vector& x) const {
  assert(fitted_);
  const std::size_t n = x_.size();
  linalg::Vector kStar(n);
  for (std::size_t i = 0; i < n; ++i) kStar[i] = kernel(x, x_[i]);
  Prediction p;
  p.mean = yMean_;
  for (std::size_t i = 0; i < n; ++i) p.mean += kStar[i] * alpha_[i];
  // var = k(x,x) - v^T v with v = L^{-1} k*.
  const linalg::Vector v = chol_.solveLower(kStar);
  double var = kernel(x, x) + config_.noiseVar;
  for (double vi : v) var -= vi * vi;
  p.std = std::sqrt(std::max(0.0, var));
  return p;
}

}  // namespace trdse::opt
