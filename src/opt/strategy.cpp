#include "opt/strategy.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/parse_util.hpp"
#include "core/pvt_search.hpp"
#include "io/checkpoint.hpp"
#include "opt/random_search.hpp"
#include "opt/tree_bayes_opt.hpp"
#include "rl/rl_strategy.hpp"

namespace trdse::opt {

void Strategy::saveCheckpoint(const std::string&) const {
  throw std::logic_error("strategy \"" + std::string(name()) +
                         "\" does not support checkpointing");
}

void Strategy::restoreCheckpoint(const std::string&) {
  throw std::logic_error("strategy \"" + std::string(name()) +
                         "\" does not support checkpointing");
}

std::string Strategy::saveCheckpointBlob() const {
  throw std::logic_error("strategy \"" + std::string(name()) +
                         "\" does not support checkpointing");
}

void Strategy::restoreCheckpointBlob(const std::string&, const std::string&) {
  throw std::logic_error("strategy \"" + std::string(name()) +
                         "\" does not support checkpointing");
}

namespace {

// ---- Option-map parsing -------------------------------------------------

using Options = std::map<std::string, std::string>;

std::uint64_t parseU64(const std::string& key, const std::string& value) {
  return common::parseU64("strategy option \"" + key + "\"", value);
}

double parseF64(const std::string& key, const std::string& value) {
  return common::parseF64("strategy option \"" + key + "\"", value);
}

bool parseBool(const std::string& key, const std::string& value) {
  return common::parseBool("strategy option \"" + key + "\"", value);
}

/// Consume every entry of `options` through `apply` (key -> handled?);
/// throws on the first key no strategy knob answers to.
void applyOptions(std::string_view strategy, const Options& options,
                  const std::function<bool(const std::string&,
                                           const std::string&)>& apply,
                  const std::string& knownKeys) {
  for (const auto& [key, value] : options) {
    if (!apply(key, value))
      throw std::invalid_argument("strategy \"" + std::string(strategy) +
                                  "\" has no option \"" + key + "\" (known: " +
                                  knownKeys + ")");
  }
}

core::PvtStrategy parsePoolPolicy(const std::string& key,
                                  const std::string& value) {
  if (value == "brute_force") return core::PvtStrategy::kBruteForce;
  if (value == "progressive_random")
    return core::PvtStrategy::kProgressiveRandom;
  if (value == "progressive_hardest")
    return core::PvtStrategy::kProgressiveHardest;
  throw std::invalid_argument(
      "strategy option \"" + key +
      "\": expected brute_force | progressive_random | progressive_hardest, "
      "got \"" +
      value + "\"");
}

// ---- TRM-DRL behind the Strategy contract -------------------------------

/// Thin adapter: core::PvtSearch already is a budget-cumulative resumable
/// state machine, so the wrapper only maps its outcome onto the common
/// schema (and derives bestValue from the final corner evaluations).
class PvtSearchStrategy final : public Strategy {
 public:
  PvtSearchStrategy(core::SizingProblem problem, core::PvtSearchConfig config,
                    std::size_t budget)
      : value_(problem.measurementNames, problem.specs),
        search_(std::move(problem), config),
        budget_(budget) {}

  std::string_view name() const override { return "pvt_search"; }
  std::size_t budget() const override { return budget_; }

  const StrategyOutcome& step(std::size_t target) override {
    core::PvtSearchOutcome out = search_.run(std::min(target, budget_));
    result_.solved = out.solved;
    result_.iterations = out.totalSims;
    result_.sizes = std::move(out.sizes);
    result_.ledger = std::move(out.ledger);  // run() already snapshotted it
    result_.evalStats = out.evalStats;
    if (!out.cornerEvals.empty()) {
      // Worst corner across the final sign-off sweep — the cross-strategy
      // comparison scalar (0 exactly when solved).
      double worst = 0.0;
      linalg::Vector worstMeas;
      for (const core::EvalResult& e : out.cornerEvals) {
        const double v = value_.valueOf(e);
        if (worstMeas.empty() || v < worst) worstMeas = e.measurements;
        worst = std::min(worst, v);
      }
      result_.bestValue = worst;
      result_.bestMeasurements = std::move(worstMeas);
    }
    return result_;
  }

  const StrategyOutcome& outcome() const override { return result_; }
  bool finished() const override {
    return result_.solved || result_.iterations >= budget_;
  }
  eval::EvalEngine& engine() override { return search_.engine(); }

  bool supportsCheckpoint() const override { return true; }
  void saveCheckpoint(const std::string& path) const override {
    search_.saveCheckpoint(path);
  }
  void restoreCheckpoint(const std::string& path) override {
    search_.restoreCheckpoint(path);
    step(0);  // refresh the cached outcome from the restored search
  }
  std::string saveCheckpointBlob() const override {
    io::CheckpointWriter w("pvt-search");
    search_.save(w);
    return w.finish();
  }
  void restoreCheckpointBlob(const std::string& blob,
                             const std::string& source) override {
    search_.restore(io::CheckpointReader(source, blob));
    step(0);  // refresh the cached outcome from the restored search
  }

 private:
  core::ValueFunction value_;
  core::PvtSearch search_;
  std::size_t budget_ = 0;
  StrategyOutcome result_;
};

}  // namespace

std::vector<std::string> strategyNames() {
  return {"pvt_search", "random_search", "tree_bayes_opt", "rl_policy"};
}

std::unique_ptr<Strategy> makeStrategy(std::string_view name,
                                       core::SizingProblem problem,
                                       std::uint64_t seed, std::size_t budget,
                                       const Options& options) {
  if (name == "pvt_search") {
    core::PvtSearchConfig cfg;
    cfg.seed = seed;
    applyOptions(
        name, options,
        [&cfg](const std::string& k, const std::string& v) {
          if (k == "pool") cfg.strategy = parsePoolPolicy(k, v);
          else if (k == "eval_threads") cfg.evalThreads = parseU64(k, v);
          else if (k == "cache") cfg.cacheEvals = parseBool(k, v);
          else if (k == "init_samples") cfg.explorer.initSamples = parseU64(k, v);
          else if (k == "mc_samples") cfg.explorer.mcSamples = parseU64(k, v);
          else return false;
          return true;
        },
        "pool, eval_threads, cache, init_samples, mc_samples");
    return std::make_unique<PvtSearchStrategy>(std::move(problem), cfg, budget);
  }

  if (name == "random_search") {
    applyOptions(
        name, options,
        [](const std::string&, const std::string&) { return false; },
        "(none)");
    return std::make_unique<RandomSearch>(std::move(problem), seed, budget);
  }

  if (name == "tree_bayes_opt") {
    TreeBayesOptConfig cfg;
    cfg.seed = seed;
    applyOptions(
        name, options,
        [&cfg](const std::string& k, const std::string& v) {
          if (k == "init_samples") cfg.initSamples = parseU64(k, v);
          else if (k == "candidate_pool") cfg.candidatePool = parseU64(k, v);
          else if (k == "local_fraction") cfg.localFraction = parseF64(k, v);
          else if (k == "local_sigma") cfg.localSigma = parseF64(k, v);
          else if (k == "kappa_start") cfg.kappaStart = parseF64(k, v);
          else if (k == "kappa_end") cfg.kappaEnd = parseF64(k, v);
          else if (k == "refit_divisor") cfg.refitDivisor = parseU64(k, v);
          else return false;
          return true;
        },
        "init_samples, candidate_pool, local_fraction, local_sigma, "
        "kappa_start, kappa_end, refit_divisor");
    return std::make_unique<TreeBayesOpt>(std::move(problem), cfg, budget);
  }

  if (name == "rl_policy") {
    rl::RlPolicyConfig cfg;
    applyOptions(
        name, options,
        [&cfg](const std::string& k, const std::string& v) {
          if (k == "hidden") cfg.hidden = parseU64(k, v);
          else if (k == "n_steps") cfg.nSteps = parseU64(k, v);
          else if (k == "episode_length") cfg.env.episodeLength = parseU64(k, v);
          else if (k == "stride_divisor") cfg.env.strideDivisor = parseU64(k, v);
          else if (k == "learning_rate") cfg.learningRate = parseF64(k, v);
          else if (k == "entropy_coeff") cfg.entropyCoeff = parseF64(k, v);
          else if (k == "train") cfg.train = parseBool(k, v);
          else return false;
          return true;
        },
        "hidden, n_steps, episode_length, stride_divisor, learning_rate, "
        "entropy_coeff, train");
    return std::make_unique<rl::RlPolicyStrategy>(std::move(problem), cfg,
                                                  seed, budget);
  }

  std::string known;
  for (const std::string& n : strategyNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown strategy \"" + std::string(name) +
                              "\" (known: " + known + ")");
}

}  // namespace trdse::opt
