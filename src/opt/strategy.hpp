// The unified search-strategy interface — every algorithm that spends EDA
// blocks behind one contract.
//
// The paper's headline result is a *comparison* (TRM-DRL vs. random search
// vs. customized tree-BO under one budget, Tables I/III–V), and comparisons
// are only honest when every contender charges its blocks through the same
// meter. An opt::Strategy is a resumable search: step(target) advances it
// until the cumulative logical-evaluation count reaches the target (clamped
// to the strategy's fixed total budget), the CSP is solved, or the strategy
// cannot make further progress. Every evaluation routes through an
// eval::EvalEngine, so all strategies get identical accounting — a
// pvt::EdaLedger block per logical request, EvalStats hit/miss counters —
// and produce one comparable StrategyOutcome.
//
// Resumability contract: for any split 0 < k < n,
//     step(k); step(n)   ==   step(n)     (bitwise, outcome and ledger)
// which is what lets the orch::Scheduler multiplex many strategies in fair
// budget slices without perturbing any of their trajectories.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "core/problem.hpp"
#include "core/value.hpp"
#include "eval/eval_engine.hpp"
#include "pvt/ledger.hpp"

namespace trdse::opt {

/// The common result every strategy emits — the row schema of the paper's
/// comparison tables. `iterations` is the logical evaluation count the
/// budget was charged for; ledger/evalStats carry the block-level accounting
/// harvested from the strategy's EvalEngine (ledger.totalBlocks() ==
/// iterations for every engine-backed strategy). The scalar fields and
/// evalStats refresh on every step(); the ledger — the one member that grows
/// with the budget — snapshots when the strategy finishes, so budget-sliced
/// scheduling stays linear in the budget. Mid-run callers read the live
/// timeline via Strategy::engine().ledger().
struct StrategyOutcome {
  bool solved = false;         ///< every sign-off corner met spec
  std::size_t iterations = 0;  ///< logical evaluations consumed (EDA blocks)
  linalg::Vector sizes;        ///< solving (or best-so-far) sizing
  double bestValue = core::kFailedValue;  ///< best worst-corner Value seen
  linalg::Vector bestMeasurements;  ///< worst-corner measurements of the best
  pvt::EdaLedger ledger;            ///< per-block timeline (Fig. 3 / Table III)
  eval::EvalStats evalStats;        ///< cache hit/miss + backend timing
};

/// Abstract resumable search algorithm (see file header for the contract).
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Stable algorithm label ("pvt_search", "random_search", ...).
  virtual std::string_view name() const = 0;

  /// The fixed total logical-evaluation budget. Budget-dependent schedules
  /// (e.g. TreeBayesOpt's UCB kappa decay) are functions of this constant,
  /// never of an individual step() target, so slicing cannot bend them.
  virtual std::size_t budget() const = 0;

  /// Advance until outcome().iterations >= min(target, budget()), the
  /// problem is solved, or no further progress is possible. Returns the
  /// outcome so far (also available via outcome()).
  virtual const StrategyOutcome& step(std::size_t target) = 0;

  /// Run to completion: step(budget()).
  const StrategyOutcome& run() { return step(budget()); }

  /// The outcome accumulated so far.
  virtual const StrategyOutcome& outcome() const = 0;

  /// Solved, budget exhausted, or unable to proceed — step() is a no-op.
  virtual bool finished() const = 0;

  /// The engine all of this strategy's evaluations route through (shared-
  /// cache attachment, accounting inspection).
  virtual eval::EvalEngine& engine() = 0;
  /// Read-only engine access.
  const eval::EvalEngine& engine() const {
    return const_cast<Strategy*>(this)->engine();
  }

  /// Whether saveCheckpoint()/restoreCheckpoint() are implemented.
  virtual bool supportsCheckpoint() const { return false; }
  /// Snapshot the full strategy state; a restored strategy continues
  /// bitwise. Throws std::logic_error when unsupported (see
  /// supportsCheckpoint), io::CheckpointError on I/O failure.
  virtual void saveCheckpoint(const std::string& path) const;
  /// Restore a snapshot written by saveCheckpoint (same problem/config).
  virtual void restoreCheckpoint(const std::string& path);

  /// In-memory sibling of saveCheckpoint: the same snapshot as a checkpoint
  /// blob (full TDCK container bytes), for embedding inside a larger
  /// container — the orchestrator's write-ahead journal stores one blob per
  /// job. Throws std::logic_error when unsupported.
  virtual std::string saveCheckpointBlob() const;
  /// Restore a blob written by saveCheckpointBlob; `source` labels error
  /// messages (e.g. "journal.ckpt[job3]").
  virtual void restoreCheckpointBlob(const std::string& blob,
                                     const std::string& source);
};

/// Registered strategy names, in factory order: "pvt_search" (TRM-DRL),
/// "random_search", "tree_bayes_opt", "rl_policy".
std::vector<std::string> strategyNames();

/// Build a strategy by name over a problem. `options` carries strategy-
/// specific overrides as string key/value pairs (the scenario-file surface;
/// see docs/ORCHESTRATION.md for the per-strategy key tables). Unknown
/// strategy names or option keys, and malformed option values, throw
/// std::invalid_argument naming the offender and the known alternatives.
std::unique_ptr<Strategy> makeStrategy(
    std::string_view name, core::SizingProblem problem, std::uint64_t seed,
    std::size_t budget, const std::map<std::string, std::string>& options = {});

}  // namespace trdse::opt
