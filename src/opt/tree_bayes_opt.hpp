// The paper's "customized BO" baseline (Section V-B):
//   * Gaussian process replaced by an extra-trees regressor (sample-scalable)
//   * dynamic balancing of exploration & exploitation: the UCB kappa decays
//     as the evaluation budget is consumed, and a slice of the candidate pool
//     is always drawn near the incumbent (exploitation) while the rest roams
//     the whole grid (exploration).
//
// It optimizes the scalar Value (worst corner across the sign-off set), so it
// can run both the single-PVT Table I benchmark and the multi-corner
// industrial cases (Tables IV/V), where the paper found it close-but-failing
// on the LDO and 4.5x slower on the ICO.
//
// Engine-backed and step()-resumable (see opt/strategy.hpp): every corner
// check is one logical EvalEngine request, so the ledger and the iteration
// budget agree by construction, and the seeded trajectory reproduces the
// original hand-rolled loop bitwise. The kappa decay is a function of the
// *total* budget, never of an individual step() target, so budget slicing
// cannot bend the acquisition schedule.
#pragma once

#include <random>

#include "core/problem.hpp"
#include "core/value.hpp"
#include "opt/extra_trees.hpp"
#include "opt/strategy.hpp"

namespace trdse::opt {

struct TreeBayesOptConfig {
  std::size_t initSamples = 12;
  std::size_t candidatePool = 600;
  double localFraction = 0.35;    ///< candidates perturbed around incumbent
  double localSigma = 0.08;       ///< unit-space perturbation width
  double kappaStart = 2.0;        ///< UCB exploration weight at t = 0
  double kappaEnd = 0.2;          ///< ... decayed linearly by budget consumed
  double failedPenaltyPerSpec = 1.5;  ///< regression target for failed sims
  /// Refit cadence: the forest is rebuilt when observations since the last
  /// fit exceed max(1, total/refitDivisor) — amortizing the O(n log n) fit
  /// over long runs without materially hurting the acquisition.
  std::size_t refitDivisor = 50;
  std::uint64_t seed = 1;
};

/// Customized tree-BO emits the common outcome schema.
using TreeBayesOptOutcome = StrategyOutcome;

class TreeBayesOpt final : public Strategy {
 public:
  /// The problem is copied (callbacks + metadata), so temporaries are safe.
  /// `budget` fixes the total simulation allowance (and the kappa-decay
  /// denominator); 0 defers it to the first run(maxSimulations) call.
  TreeBayesOpt(core::SizingProblem problem, TreeBayesOptConfig config,
               std::size_t budget = 0);

  std::string_view name() const override { return "tree_bayes_opt"; }
  std::size_t budget() const override { return budget_; }

  /// Advance the init-sample / BO loop until the cumulative target is
  /// reached or the CSP is solved. Slice boundaries pause only *between*
  /// observations; the multi-corner sweep inside one observation runs to its
  /// own early-exit rules (bounded by the corner count), exactly as in the
  /// single-shot loop.
  const StrategyOutcome& step(std::size_t target) override;

  using Strategy::run;
  /// Legacy single-shot surface: raises the budget to `maxSimulations` (when
  /// larger) and advances to completion.
  const StrategyOutcome& run(std::size_t maxSimulations);

  const StrategyOutcome& outcome() const override { return result_; }
  bool finished() const override;
  eval::EvalEngine& engine() override { return engine_; }

 private:
  /// Where the search stands between two observations.
  enum class Phase : std::uint8_t { kInitSample, kBoLoop, kDone };

  /// Worst value across all sign-off corners (early exit on hard failure),
  /// then dataset/incumbent bookkeeping — one full legacy observation.
  void observe(const linalg::Vector& rawSizes);

  const StrategyOutcome& harvest();

  core::SizingProblem problem_;
  TreeBayesOptConfig config_;
  core::ValueFunction value_;
  eval::EvalEngine engine_;
  std::mt19937_64 rng_;
  std::size_t budget_ = 0;

  // ---- Resumable loop state ----
  Phase phase_ = Phase::kInitSample;
  std::size_t initDone_ = 0;            ///< init samples taken
  std::vector<linalg::Vector> xs_;      ///< unit-space inputs
  std::vector<double> ys_;              ///< observed worst-corner values
  linalg::Vector bestUnit_;             ///< incumbent in unit space
  ExtraTreesRegressor model_;
  std::size_t lastFitSize_ = 0;
  /// Member, not a local: normal_distribution caches its spare deviate, so
  /// the stream must survive step() boundaries for sliced runs to reproduce
  /// single-shot ones bitwise.
  std::normal_distribution<double> gauss_;
  StrategyOutcome result_;
};

}  // namespace trdse::opt
