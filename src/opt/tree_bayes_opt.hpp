// The paper's "customized BO" baseline (Section V-B):
//   * Gaussian process replaced by an extra-trees regressor (sample-scalable)
//   * dynamic balancing of exploration & exploitation: the UCB kappa decays
//     as the evaluation budget is consumed, and a slice of the candidate pool
//     is always drawn near the incumbent (exploitation) while the rest roams
//     the whole grid (exploration).
//
// It optimizes the scalar Value (worst corner across the sign-off set), so it
// can run both the single-PVT Table I benchmark and the multi-corner
// industrial cases (Tables IV/V), where the paper found it close-but-failing
// on the LDO and 4.5x slower on the ICO.
#pragma once

#include <random>

#include "core/problem.hpp"
#include "core/value.hpp"
#include "opt/extra_trees.hpp"

namespace trdse::opt {

struct TreeBayesOptConfig {
  std::size_t initSamples = 12;
  std::size_t candidatePool = 600;
  double localFraction = 0.35;    ///< candidates perturbed around incumbent
  double localSigma = 0.08;       ///< unit-space perturbation width
  double kappaStart = 2.0;        ///< UCB exploration weight at t = 0
  double kappaEnd = 0.2;          ///< ... decayed linearly by budget consumed
  double failedPenaltyPerSpec = 1.5;  ///< regression target for failed sims
  /// Refit cadence: the forest is rebuilt when observations since the last
  /// fit exceed max(1, total/refitDivisor) — amortizing the O(n log n) fit
  /// over long runs without materially hurting the acquisition.
  std::size_t refitDivisor = 50;
  std::uint64_t seed = 1;
};

struct TreeBayesOptOutcome {
  bool solved = false;
  std::size_t iterations = 0;  ///< simulations consumed (all corners counted)
  linalg::Vector sizes;
  double bestValue = core::kFailedValue;
  linalg::Vector bestMeasurements;  ///< worst-corner measurements of the best
};

class TreeBayesOpt {
 public:
  TreeBayesOpt(const core::SizingProblem& problem, TreeBayesOptConfig config);

  TreeBayesOptOutcome run(std::size_t maxSimulations);

 private:
  /// Worst value across all sign-off corners (early exit on hard failure).
  double evaluateAllCorners(const linalg::Vector& sizes,
                            TreeBayesOptOutcome& out,
                            std::size_t maxSimulations,
                            linalg::Vector* worstMeas);

  const core::SizingProblem& problem_;
  TreeBayesOptConfig config_;
  core::ValueFunction value_;
  std::mt19937_64 rng_;
};

}  // namespace trdse::opt
