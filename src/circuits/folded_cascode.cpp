#include "circuits/folded_cascode.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <vector>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/netlist.hpp"
#include "sim/op_batch.hpp"

namespace trdse::circuits {

namespace {
constexpr double kLoadCap = 500e-15;
constexpr double kBiasDiodeWidth = 2e-6;

/// A stamped OTA testbench plus the handles measurement needs.
struct FcTestbench {
  sim::Netlist netlist;
  sim::NodeId out = sim::kGround;
  std::size_t vddSource = 0;
  linalg::Vector initialGuess;
  double vdd = 0.0;
};

/// AC sweep grid shared by the scalar and batched measurement paths.
std::vector<double> sweepFreqs() {
  return sim::AcSolver::logSpace(10.0, 20e9, 110);
}

/// Assemble the result from an operating point + completed sweep. Shared by
/// the scalar and batched paths so both run the identical expressions.
core::EvalResult resultFromSweep(const FcTestbench& tb, const sim::DcResult& op,
                                 const std::vector<double>& freqs,
                                 const std::vector<std::complex<double>>& h) {
  const sim::LoopMetrics lm = sim::analyzeLoop(freqs, h);
  if (!lm.crossesUnity) return {};

  core::EvalResult r;
  r.ok = true;
  r.measurements.assign(FoldedCascodeOta::kMeasCount, 0.0);
  r.measurements[FoldedCascodeOta::kGainDb] = lm.dcGainDb;
  r.measurements[FoldedCascodeOta::kUgbwHz] = lm.unityGainHz;
  r.measurements[FoldedCascodeOta::kPmDeg] = lm.phaseMarginDeg;
  r.measurements[FoldedCascodeOta::kPowerMw] =
      std::abs(op.vsourceCurrent(tb.vddSource)) * tb.vdd * 1e3;
  return r;
}
}  // namespace

FoldedCascodeOta::FoldedCascodeOta(const sim::ProcessCard& card) : card_(card) {}

const std::vector<std::string>& FoldedCascodeOta::measurementNames() {
  static const std::vector<std::string> names = {"gain_db", "ugbw_hz", "pm_deg",
                                                 "power_mw"};
  return names;
}

core::DesignSpace FoldedCascodeOta::designSpace(const sim::ProcessCard& card) {
  const double minL = card.minL;
  return core::DesignSpace({
      {"w1", 0.5e-6, 30e-6, 64, true},
      {"w3", 0.5e-6, 40e-6, 64, true},
      {"w5", 0.5e-6, 40e-6, 64, true},
      {"w7", 0.5e-6, 40e-6, 64, true},
      {"w9", 0.5e-6, 40e-6, 64, true},
      {"l", 1.0 * minL, 6.0 * minL, 16, false},
      {"ibias", 2e-6, 80e-6, 64, true},
  });
}

namespace {
FcTestbench buildFcTestbench(const sim::ProcessCard& card,
                             const linalg::Vector& sizes,
                             const sim::PvtCorner& corner) {
  using P = FoldedCascodeOta;
  assert(sizes.size() == P::kParamCount);
  const sim::MosParams nmos =
      sim::applyPvt(card.nmos, sim::MosType::kNmos, corner, card.tnomK);
  const sim::MosParams pmos =
      sim::applyPvt(card.pmos, sim::MosType::kPmos, corner, card.tnomK);

  FcTestbench tb;
  sim::Netlist& nl = tb.netlist;
  nl.tempK = corner.tempK();
  const sim::NodeId vdd = nl.node("vdd");
  const sim::NodeId inp = nl.node("inp");
  const sim::NodeId inn = nl.node("inn");
  const sim::NodeId tail = nl.node("tail");
  const sim::NodeId f1 = nl.node("f1");  // folding node, M1 side
  const sim::NodeId f2 = nl.node("f2");
  const sim::NodeId c1 = nl.node("c1");  // cascode output, mirror side
  const sim::NodeId out = nl.node("out");
  const sim::NodeId nbias = nl.node("nbias");
  const sim::NodeId pb1 = nl.node("pb1");
  const sim::NodeId pb2 = nl.node("pb2");
  const sim::NodeId nb2 = nl.node("nb2");

  const double vcm = 0.60 * corner.vdd;
  const std::size_t vddSrc = nl.addVSource(vdd, sim::kGround, corner.vdd);
  nl.addVSource(inp, sim::kGround, vcm, +0.5);
  nl.addVSource(inn, sim::kGround, vcm, -0.5);
  // Cascode bias rails (testbench-provided).
  nl.addVSource(pb1, sim::kGround, 0.45 * corner.vdd);
  nl.addVSource(pb2, sim::kGround, 0.30 * corner.vdd);
  nl.addVSource(nb2, sim::kGround, 0.68 * corner.vdd);
  nl.addISource(vdd, nbias, sizes[P::kIbias]);

  using sim::MosType;
  const double l = sizes[P::kL];
  const sim::MosGeometry g1{sizes[P::kW1], l, 1.0};
  const sim::MosGeometry g3{sizes[P::kW3], l, 1.0};
  const sim::MosGeometry g5{sizes[P::kW5], l, 1.0};
  const sim::MosGeometry g7{sizes[P::kW7], l, 1.0};
  const sim::MosGeometry g9{sizes[P::kW9], l, 1.0};
  const sim::MosGeometry g0{2.0 * sizes[P::kW1], l, 1.0};
  const sim::MosGeometry gd{kBiasDiodeWidth, l, 1.0};

  nl.addMosfet("M1", f1, inp, tail, sim::kGround, MosType::kNmos, g1, nmos);
  nl.addMosfet("M2", f2, inn, tail, sim::kGround, MosType::kNmos, g1, nmos);
  nl.addMosfet("M0", tail, nbias, sim::kGround, sim::kGround, MosType::kNmos,
               g0, nmos);
  nl.addMosfet("MB", nbias, nbias, sim::kGround, sim::kGround, MosType::kNmos,
               gd, nmos);
  nl.addMosfet("M3", f1, pb1, vdd, vdd, MosType::kPmos, g3, pmos);
  nl.addMosfet("M4", f2, pb1, vdd, vdd, MosType::kPmos, g3, pmos);
  nl.addMosfet("M5", c1, pb2, f1, vdd, MosType::kPmos, g5, pmos);
  nl.addMosfet("M6", out, pb2, f2, vdd, MosType::kPmos, g5, pmos);
  nl.addMosfet("M7", c1, nb2, nl.node("m1"), sim::kGround, MosType::kNmos, g7,
               nmos);
  nl.addMosfet("M8", out, nb2, nl.node("m2"), sim::kGround, MosType::kNmos, g7,
               nmos);
  // Mirror bottom: gates driven by the cascode output on the M7 side.
  nl.addMosfet("M9", nl.node("m1"), c1, sim::kGround, sim::kGround,
               MosType::kNmos, g9, nmos);
  nl.addMosfet("M10", nl.node("m2"), c1, sim::kGround, sim::kGround,
               MosType::kNmos, g9, nmos);

  nl.addCapacitor(out, sim::kGround, kLoadCap);

  linalg::Vector guess(nl.nodeCount(), 0.0);
  guess[static_cast<std::size_t>(vdd)] = corner.vdd;
  guess[static_cast<std::size_t>(inp)] = vcm;
  guess[static_cast<std::size_t>(inn)] = vcm;
  guess[static_cast<std::size_t>(tail)] = vcm - 0.4;
  guess[static_cast<std::size_t>(f1)] = corner.vdd - 0.3;
  guess[static_cast<std::size_t>(f2)] = corner.vdd - 0.3;
  guess[static_cast<std::size_t>(c1)] = 0.5 * corner.vdd;
  guess[static_cast<std::size_t>(out)] = 0.5 * corner.vdd;
  guess[static_cast<std::size_t>(nbias)] = 0.5;
  guess[static_cast<std::size_t>(pb1)] = 0.45 * corner.vdd;
  guess[static_cast<std::size_t>(pb2)] = 0.30 * corner.vdd;
  guess[static_cast<std::size_t>(nb2)] = 0.68 * corner.vdd;

  tb.out = out;
  tb.vddSource = vddSrc;
  tb.initialGuess = std::move(guess);
  tb.vdd = corner.vdd;
  return tb;
}
}  // namespace

core::EvalResult FoldedCascodeOta::evaluate(const linalg::Vector& sizes,
                                            const sim::PvtCorner& corner) const {
  const FcTestbench tb = buildFcTestbench(card_, sizes, corner);
  const sim::DcSolver dc(tb.netlist);
  const sim::DcResult op = dc.solve(&tb.initialGuess);
  if (!op.converged) return {};

  const sim::AcSolver ac(tb.netlist, op);
  const auto freqs = sweepFreqs();
  return resultFromSweep(tb, op, freqs, ac.sweep(freqs, tb.out));
}

void FoldedCascodeOta::evaluateBatch(const linalg::Vector* const* sizes,
                                     const sim::PvtCorner* corners,
                                     core::EvalResult* results,
                                     std::size_t count) const {
  const auto freqs = sweepFreqs();
  for (std::size_t off = 0; off < count; off += sim::kSimLanes) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(sim::kSimLanes, count - off));
    std::array<FcTestbench, sim::kSimLanes> tbs;
    std::array<const sim::Netlist*, sim::kSimLanes> nls{};
    std::array<const linalg::Vector*, sim::kSimLanes> guesses{};
    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      tbs[li] = buildFcTestbench(card_, *sizes[off + li], corners[off + li]);
      nls[li] = &tbs[li].netlist;
      guesses[li] = &tbs[li].initialGuess;
    }
    const auto ops = sim::solveDcBatch(nls, guesses);

    std::array<const sim::Netlist*, sim::kSimLanes> acNls{};
    std::array<const sim::DcResult*, sim::kSimLanes> acOps{};
    bool anyAc = false;
    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      if (!ops[li].converged) continue;
      acNls[li] = nls[li];
      acOps[li] = &ops[li];
      anyAc = true;
    }

    std::array<std::vector<std::complex<double>>, sim::kSimLanes> h;
    if (anyAc) {
      sim::AcBatch ac(acNls, acOps);
      for (int l = 0; l < lanes; ++l)
        if (acOps[static_cast<std::size_t>(l)])
          h[static_cast<std::size_t>(l)].reserve(freqs.size());
      for (const double f : freqs) {
        ac.solveAt(f);
        for (int l = 0; l < lanes; ++l)
          if (acOps[static_cast<std::size_t>(l)])
            h[static_cast<std::size_t>(l)].push_back(
                ac.nodeVoltage(l, tbs[static_cast<std::size_t>(l)].out));
      }
      // A lane whose lane-blocked factorization went non-finite is replayed
      // through the scalar solver, which is the equivalence reference.
      for (int l = 0; l < lanes; ++l)
        if (acOps[static_cast<std::size_t>(l)] && !ac.laneFinite(l))
          h[static_cast<std::size_t>(l)] = ac.laneSolver(l)->sweep(
              freqs, tbs[static_cast<std::size_t>(l)].out);
    }

    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      results[off + li] = acOps[li]
                              ? resultFromSweep(tbs[li], ops[li], freqs, h[li])
                              : core::EvalResult{};
    }
  }
}

double FoldedCascodeOta::area(const linalg::Vector& sizes) const {
  assert(sizes.size() == kParamCount);
  const double l = sizes[kL];
  double a = 0.0;
  a += 2.0 * sizes[kW1] * l;      // M1, M2
  a += 2.0 * sizes[kW1] * l;      // M0 (2x width)
  a += 2.0 * sizes[kW3] * l;      // M3, M4
  a += 2.0 * sizes[kW5] * l;      // M5, M6
  a += 2.0 * sizes[kW7] * l;      // M7, M8
  a += 2.0 * sizes[kW9] * l;      // M9, M10
  a += kBiasDiodeWidth * l;
  return a * 1e12;
}

std::vector<core::Spec> FoldedCascodeOta::defaultSpecs() const {
  using core::SpecKind;
  return {{"gain_db", SpecKind::kAtLeast, 72.0},
          {"ugbw_hz", SpecKind::kAtLeast, 150e6},
          {"pm_deg", SpecKind::kAtLeast, 60.0},
          {"power_mw", SpecKind::kAtMost, 0.25}};
}

core::SizingProblem FoldedCascodeOta::makeProblem(
    std::vector<sim::PvtCorner> corners, std::vector<core::Spec> specs) const {
  core::SizingProblem p;
  p.name = "folded_cascode_" + card_.name;
  p.space = designSpace(card_);
  p.measurementNames = measurementNames();
  p.specs = std::move(specs);
  p.corners = std::move(corners);
  const FoldedCascodeOta self = *this;
  p.evaluate = [self](const linalg::Vector& sizes, const sim::PvtCorner& c) {
    return self.evaluate(sizes, c);
  };
  p.evaluateBatch = [self](const linalg::Vector* const* sizes,
                           const sim::PvtCorner* corners,
                           core::EvalResult* results, std::size_t count) {
    self.evaluateBatch(sizes, corners, results, count);
  };
  p.area = [self](const linalg::Vector& sizes) { return self.area(sizes); };
  return p;
}

}  // namespace trdse::circuits
