#include "circuits/ico.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/dc.hpp"
#include "sim/netlist.hpp"
#include "sim/op_batch.hpp"
#include "sim/transient.hpp"

namespace trdse::circuits {

namespace {
constexpr int kStages = 3;
constexpr double kPnOffsetHz = 1e6;
/// Excess-noise factor folding in short-channel gamma, flicker corner and
/// buffer noise; calibrated so hand designs land in the paper's -71..-74 dB
/// range at ~8-9 GHz.
constexpr double kExcessNoise = 25.0;

/// Transient schedule shared by the scalar and batched paths.
sim::TransientOptions transientOptions() {
  sim::TransientOptions topt;
  topt.tStop = 3.0e-9;
  topt.dt = 0.8e-12;
  return topt;
}
}  // namespace

Ico::Ico(const sim::ProcessCard& card) : card_(card) {}

const std::vector<std::string>& Ico::measurementNames() {
  static const std::vector<std::string> names = {"freq_ghz", "pnoise_dbc",
                                                 "power_mw"};
  return names;
}

core::DesignSpace Ico::designSpace(const sim::ProcessCard& card) {
  const double minL = card.minL;
  (void)minL;
  return core::DesignSpace({
      {"wn", 0.4e-6, 4e-6, 20, true},
      {"wp", 0.6e-6, 8e-6, 20, true},
      {"wst", 0.6e-6, 12e-6, 20, true},
      {"ictrl", 20e-6, 400e-6, 20, true},
  });
}

double Ico::estimatePhaseNoiseDbc(double f0Hz, double powerW, double offsetHz,
                                  double tempK) {
  if (f0Hz <= 0.0 || powerW <= 0.0) return 0.0;
  const double kT = 1.380649e-23 * tempK;
  const double ratio = f0Hz / offsetHz;
  const double l = kExcessNoise * (8.0 / 3.0) * (kT / powerW) * ratio * ratio;
  return 10.0 * std::log10(l);
}

namespace {

/// A stamped ring-oscillator testbench plus the handles measurement needs.
struct IcoTestbench {
  sim::Netlist netlist;
  std::vector<sim::NodeId> ring;
  std::size_t vddSource = 0;
  linalg::Vector initialGuess;
};

IcoTestbench buildIcoTestbench(const sim::ProcessCard& card,
                               const linalg::Vector& sizes,
                               const sim::PvtCorner& corner) {
  assert(sizes.size() == Ico::kParamCount);
  const sim::MosParams nmos =
      sim::applyPvt(card.nmos, sim::MosType::kNmos, corner, card.tnomK);
  const sim::MosParams pmos =
      sim::applyPvt(card.pmos, sim::MosType::kPmos, corner, card.tnomK);
  const double minL = card.minL;

  IcoTestbench tb;
  sim::Netlist& nl = tb.netlist;
  nl.tempK = corner.tempK();
  const sim::NodeId vdd = nl.node("vdd");
  const sim::NodeId nbias = nl.node("nbias");
  const sim::NodeId pbias = nl.node("pbias");

  const std::size_t vddSrc = nl.addVSource(vdd, sim::kGround, corner.vdd);
  nl.addISource(vdd, nbias, sizes[Ico::kIctrl]);

  using sim::MosType;
  const sim::MosGeometry gMir{sizes[Ico::kWst], 2.0 * minL, 1.0};
  const sim::MosGeometry gInvN{sizes[Ico::kWn], minL, 1.0};
  const sim::MosGeometry gInvP{sizes[Ico::kWp], minL, 1.0};
  const sim::MosGeometry gStN{sizes[Ico::kWst], minL, 1.0};
  const sim::MosGeometry gStP{2.0 * sizes[Ico::kWst], minL, 1.0};

  // Bias mirrors: Ictrl -> nbias diode; nbias mirror pulls the pbias diode.
  nl.addMosfet("MNB", nbias, nbias, sim::kGround, sim::kGround, MosType::kNmos,
               gMir, nmos);
  nl.addMosfet("MNM", pbias, nbias, sim::kGround, sim::kGround, MosType::kNmos,
               gMir, nmos);
  nl.addMosfet("MPB", pbias, pbias, vdd, vdd, MosType::kPmos, gMir, pmos);

  // Ring stages. Stage i: in = ring[i], out = ring[i+1 mod N].
  tb.ring.resize(kStages);
  std::vector<sim::NodeId>& ring = tb.ring;
  for (int i = 0; i < kStages; ++i) ring[i] = nl.node("r" + std::to_string(i));
  for (int i = 0; i < kStages; ++i) {
    const sim::NodeId in = ring[static_cast<std::size_t>(i)];
    const sim::NodeId out = ring[static_cast<std::size_t>((i + 1) % kStages)];
    const sim::NodeId vtp = nl.node("vtp" + std::to_string(i));
    const sim::NodeId vtn = nl.node("vtn" + std::to_string(i));
    const std::string tag = std::to_string(i);
    nl.addMosfet("MSP" + tag, vtp, pbias, vdd, vdd, MosType::kPmos, gStP, pmos);
    nl.addMosfet("MP" + tag, out, in, vtp, vdd, MosType::kPmos, gInvP, pmos);
    nl.addMosfet("MN" + tag, out, in, vtn, sim::kGround, MosType::kNmos, gInvN,
                 nmos);
    nl.addMosfet("MSN" + tag, vtn, nbias, sim::kGround, sim::kGround,
                 MosType::kNmos, gStN, nmos);
  }

  // DC: find the (metastable) balance point, then kick one ring node.
  linalg::Vector guess(nl.nodeCount(), corner.vdd * 0.5);
  guess[sim::kGround] = 0.0;
  guess[static_cast<std::size_t>(vdd)] = corner.vdd;
  guess[static_cast<std::size_t>(nbias)] = 0.4;
  guess[static_cast<std::size_t>(pbias)] = corner.vdd - 0.4;

  tb.vddSource = vddSrc;
  tb.initialGuess = std::move(guess);
  return tb;
}

/// Kick the metastable balance point onto the oscillation trajectory.
linalg::Vector kickedState(const IcoTestbench& tb, const sim::DcResult& op) {
  linalg::Vector ic = op.v;
  ic[static_cast<std::size_t>(tb.ring[0])] += 0.08;
  ic[static_cast<std::size_t>(tb.ring[1])] -= 0.05;
  return ic;
}

/// Extract {freq, pnoise, power} from a completed transient. Shared by the
/// scalar and batched paths so both run the identical expressions.
core::EvalResult measureFromTransient(const IcoTestbench& tb,
                                      const sim::TransientResult& tr,
                                      const sim::PvtCorner& corner) {
  if (!tr.completed) return {};

  const sim::Waveform w = tr.waveform(tb.ring[2]);
  const double f0 = sim::estimateFrequency(w, corner.vdd * 0.5, 4);
  if (f0 <= 0.0) return {};  // did not oscillate
  // Require sustained swing (not a decaying ringback).
  if (sim::steadyStateAmplitude(w, 0.3) < 0.3 * corner.vdd) return {};

  const double idd = tr.meanVsourceCurrent(tb.vddSource, 0.5);
  const double power = idd * corner.vdd;

  core::EvalResult r;
  r.ok = true;
  r.measurements.assign(Ico::kMeasCount, 0.0);
  r.measurements[Ico::kFreqGhz] = f0 / 1e9;
  r.measurements[Ico::kPnoiseDbc] =
      Ico::estimatePhaseNoiseDbc(f0, power, kPnOffsetHz, corner.tempK());
  r.measurements[Ico::kPowerMw] = power * 1e3;
  return r;
}

}  // namespace

core::EvalResult Ico::evaluate(const linalg::Vector& sizes,
                               const sim::PvtCorner& corner) const {
  const IcoTestbench tb = buildIcoTestbench(card_, sizes, corner);
  const sim::DcSolver dc(tb.netlist);
  const sim::DcResult op = dc.solve(&tb.initialGuess);
  if (!op.converged) return {};

  const linalg::Vector ic = kickedState(tb, op);
  const sim::TransientSolver tran(tb.netlist, transientOptions());
  return measureFromTransient(tb, tran.run(ic), corner);
}

void Ico::evaluateBatch(const linalg::Vector* const* sizes,
                        const sim::PvtCorner* corners,
                        core::EvalResult* results, std::size_t count) const {
  for (std::size_t off = 0; off < count; off += sim::kSimLanes) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(sim::kSimLanes, count - off));
    std::array<IcoTestbench, sim::kSimLanes> tbs;
    std::array<const sim::Netlist*, sim::kSimLanes> nls{};
    std::array<const linalg::Vector*, sim::kSimLanes> guesses{};
    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      tbs[li] = buildIcoTestbench(card_, *sizes[off + li], corners[off + li]);
      nls[li] = &tbs[li].netlist;
      guesses[li] = &tbs[li].initialGuess;
    }
    const auto ops = sim::solveDcBatch(nls, guesses);

    std::array<linalg::Vector, sim::kSimLanes> ics;
    std::array<const sim::Netlist*, sim::kSimLanes> trNls{};
    std::array<const linalg::Vector*, sim::kSimLanes> initial{};
    bool anyTr = false;
    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      if (!ops[li].converged) continue;
      ics[li] = kickedState(tbs[li], ops[li]);
      trNls[li] = nls[li];
      initial[li] = &ics[li];
      anyTr = true;
    }

    if (anyTr) {
      sim::TransientBatch batch(trNls, transientOptions(), initial);
      batch.run();
      for (int l = 0; l < lanes; ++l) {
        const auto li = static_cast<std::size_t>(l);
        results[off + li] =
            trNls[li] ? measureFromTransient(tbs[li], batch.takeResult(l),
                                             corners[off + li])
                      : core::EvalResult{};
      }
    } else {
      for (int l = 0; l < lanes; ++l)
        results[off + static_cast<std::size_t>(l)] = core::EvalResult{};
    }
  }
}

double Ico::area(const linalg::Vector& sizes) const {
  assert(sizes.size() == kParamCount);
  const double minL = card_.minL;
  double a = 0.0;
  a += 3.0 * sizes[kWst] * 2.0 * minL;                       // mirrors
  a += kStages * (sizes[kWn] + sizes[kWp]) * minL;           // inverters
  a += kStages * (sizes[kWst] + 2.0 * sizes[kWst]) * minL;   // starving
  return a * 1e12;  // µm^2
}

std::vector<core::Spec> Ico::defaultSpecs() const {
  using core::SpecKind;
  // The paper's Table V lists phase noise and frequency; the implicit power
  // budget every oscillator has is made explicit here, because phase noise
  // improves monotonically with power in the Leeson estimator (without the
  // budget the "best" design is simply the hottest one).
  return {{"pnoise_dbc", SpecKind::kAtMost, -71.0},
          {"freq_ghz", SpecKind::kAtLeast, 8.0},
          {"power_mw", SpecKind::kAtMost, 0.40}};
}

core::SizingProblem Ico::makeProblem(std::vector<sim::PvtCorner> corners,
                                     std::vector<core::Spec> specs) const {
  core::SizingProblem p;
  p.name = "ico_" + card_.name;
  p.space = designSpace(card_);
  p.measurementNames = measurementNames();
  p.specs = std::move(specs);
  p.corners = std::move(corners);
  const Ico self = *this;
  p.evaluate = [self](const linalg::Vector& sizes, const sim::PvtCorner& c) {
    return self.evaluate(sizes, c);
  };
  p.evaluateBatch = [self](const linalg::Vector* const* sizes,
                           const sim::PvtCorner* corners,
                           core::EvalResult* results, std::size_t count) {
    self.evaluateBatch(sizes, corners, results, count);
  };
  p.area = [self](const linalg::Vector& sizes) { return self.area(sizes); };
  return p;
}

linalg::Vector Ico::humanReferenceSizing() {
  // Meets spec with margin: ~9.1 GHz, ~-72.2 dBc/Hz, ~0.38 mW on n5/TT.
  linalg::Vector s(kParamCount);
  s[kWn] = 2.0e-6;
  s[kWp] = 4.0e-6;
  s[kWst] = 6.0e-6;
  s[kIctrl] = 110e-6;
  return s;
}

}  // namespace trdse::circuits
