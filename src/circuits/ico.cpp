#include "circuits/ico.hpp"

#include <cmath>

#include "sim/dc.hpp"
#include "sim/netlist.hpp"
#include "sim/transient.hpp"

namespace trdse::circuits {

namespace {
constexpr int kStages = 3;
constexpr double kPnOffsetHz = 1e6;
/// Excess-noise factor folding in short-channel gamma, flicker corner and
/// buffer noise; calibrated so hand designs land in the paper's -71..-74 dB
/// range at ~8-9 GHz.
constexpr double kExcessNoise = 25.0;
}  // namespace

Ico::Ico(const sim::ProcessCard& card) : card_(card) {}

const std::vector<std::string>& Ico::measurementNames() {
  static const std::vector<std::string> names = {"freq_ghz", "pnoise_dbc",
                                                 "power_mw"};
  return names;
}

core::DesignSpace Ico::designSpace(const sim::ProcessCard& card) {
  const double minL = card.minL;
  (void)minL;
  return core::DesignSpace({
      {"wn", 0.4e-6, 4e-6, 20, true},
      {"wp", 0.6e-6, 8e-6, 20, true},
      {"wst", 0.6e-6, 12e-6, 20, true},
      {"ictrl", 20e-6, 400e-6, 20, true},
  });
}

double Ico::estimatePhaseNoiseDbc(double f0Hz, double powerW, double offsetHz,
                                  double tempK) {
  if (f0Hz <= 0.0 || powerW <= 0.0) return 0.0;
  const double kT = 1.380649e-23 * tempK;
  const double ratio = f0Hz / offsetHz;
  const double l = kExcessNoise * (8.0 / 3.0) * (kT / powerW) * ratio * ratio;
  return 10.0 * std::log10(l);
}

core::EvalResult Ico::evaluate(const linalg::Vector& sizes,
                               const sim::PvtCorner& corner) const {
  assert(sizes.size() == kParamCount);
  const sim::MosParams nmos =
      sim::applyPvt(card_.nmos, sim::MosType::kNmos, corner, card_.tnomK);
  const sim::MosParams pmos =
      sim::applyPvt(card_.pmos, sim::MosType::kPmos, corner, card_.tnomK);
  const double minL = card_.minL;

  sim::Netlist nl;
  nl.tempK = corner.tempK();
  const sim::NodeId vdd = nl.node("vdd");
  const sim::NodeId nbias = nl.node("nbias");
  const sim::NodeId pbias = nl.node("pbias");

  const std::size_t vddSrc = nl.addVSource(vdd, sim::kGround, corner.vdd);
  nl.addISource(vdd, nbias, sizes[kIctrl]);

  using sim::MosType;
  const sim::MosGeometry gMir{sizes[kWst], 2.0 * minL, 1.0};
  const sim::MosGeometry gInvN{sizes[kWn], minL, 1.0};
  const sim::MosGeometry gInvP{sizes[kWp], minL, 1.0};
  const sim::MosGeometry gStN{sizes[kWst], minL, 1.0};
  const sim::MosGeometry gStP{2.0 * sizes[kWst], minL, 1.0};

  // Bias mirrors: Ictrl -> nbias diode; nbias mirror pulls the pbias diode.
  nl.addMosfet("MNB", nbias, nbias, sim::kGround, sim::kGround, MosType::kNmos,
               gMir, nmos);
  nl.addMosfet("MNM", pbias, nbias, sim::kGround, sim::kGround, MosType::kNmos,
               gMir, nmos);
  nl.addMosfet("MPB", pbias, pbias, vdd, vdd, MosType::kPmos, gMir, pmos);

  // Ring stages. Stage i: in = ring[i], out = ring[i+1 mod N].
  std::vector<sim::NodeId> ring(kStages);
  for (int i = 0; i < kStages; ++i) ring[i] = nl.node("r" + std::to_string(i));
  for (int i = 0; i < kStages; ++i) {
    const sim::NodeId in = ring[static_cast<std::size_t>(i)];
    const sim::NodeId out = ring[static_cast<std::size_t>((i + 1) % kStages)];
    const sim::NodeId vtp = nl.node("vtp" + std::to_string(i));
    const sim::NodeId vtn = nl.node("vtn" + std::to_string(i));
    const std::string tag = std::to_string(i);
    nl.addMosfet("MSP" + tag, vtp, pbias, vdd, vdd, MosType::kPmos, gStP, pmos);
    nl.addMosfet("MP" + tag, out, in, vtp, vdd, MosType::kPmos, gInvP, pmos);
    nl.addMosfet("MN" + tag, out, in, vtn, sim::kGround, MosType::kNmos, gInvN,
                 nmos);
    nl.addMosfet("MSN" + tag, vtn, nbias, sim::kGround, sim::kGround,
                 MosType::kNmos, gStN, nmos);
  }

  // DC: find the (metastable) balance point, then kick one ring node.
  linalg::Vector guess(nl.nodeCount(), corner.vdd * 0.5);
  guess[sim::kGround] = 0.0;
  guess[static_cast<std::size_t>(vdd)] = corner.vdd;
  guess[static_cast<std::size_t>(nbias)] = 0.4;
  guess[static_cast<std::size_t>(pbias)] = corner.vdd - 0.4;

  const sim::DcSolver dc(nl);
  const sim::DcResult op = dc.solve(&guess);
  if (!op.converged) return {};

  linalg::Vector ic = op.v;
  ic[static_cast<std::size_t>(ring[0])] += 0.08;
  ic[static_cast<std::size_t>(ring[1])] -= 0.05;

  sim::TransientOptions topt;
  topt.tStop = 3.0e-9;
  topt.dt = 0.8e-12;
  const sim::TransientSolver tran(nl, topt);
  const sim::TransientResult tr = tran.run(ic);
  if (!tr.completed) return {};

  const sim::Waveform w = tr.waveform(ring[2]);
  const double f0 = sim::estimateFrequency(w, corner.vdd * 0.5, 4);
  if (f0 <= 0.0) return {};  // did not oscillate
  // Require sustained swing (not a decaying ringback).
  if (sim::steadyStateAmplitude(w, 0.3) < 0.3 * corner.vdd) return {};

  const double idd = tr.meanVsourceCurrent(vddSrc, 0.5);
  const double power = idd * corner.vdd;

  core::EvalResult r;
  r.ok = true;
  r.measurements.assign(kMeasCount, 0.0);
  r.measurements[kFreqGhz] = f0 / 1e9;
  r.measurements[kPnoiseDbc] =
      estimatePhaseNoiseDbc(f0, power, kPnOffsetHz, corner.tempK());
  r.measurements[kPowerMw] = power * 1e3;
  return r;
}

double Ico::area(const linalg::Vector& sizes) const {
  assert(sizes.size() == kParamCount);
  const double minL = card_.minL;
  double a = 0.0;
  a += 3.0 * sizes[kWst] * 2.0 * minL;                       // mirrors
  a += kStages * (sizes[kWn] + sizes[kWp]) * minL;           // inverters
  a += kStages * (sizes[kWst] + 2.0 * sizes[kWst]) * minL;   // starving
  return a * 1e12;  // µm^2
}

std::vector<core::Spec> Ico::defaultSpecs() const {
  using core::SpecKind;
  // The paper's Table V lists phase noise and frequency; the implicit power
  // budget every oscillator has is made explicit here, because phase noise
  // improves monotonically with power in the Leeson estimator (without the
  // budget the "best" design is simply the hottest one).
  return {{"pnoise_dbc", SpecKind::kAtMost, -71.0},
          {"freq_ghz", SpecKind::kAtLeast, 8.0},
          {"power_mw", SpecKind::kAtMost, 0.40}};
}

core::SizingProblem Ico::makeProblem(std::vector<sim::PvtCorner> corners,
                                     std::vector<core::Spec> specs) const {
  core::SizingProblem p;
  p.name = "ico_" + card_.name;
  p.space = designSpace(card_);
  p.measurementNames = measurementNames();
  p.specs = std::move(specs);
  p.corners = std::move(corners);
  const Ico self = *this;
  p.evaluate = [self](const linalg::Vector& sizes, const sim::PvtCorner& c) {
    return self.evaluate(sizes, c);
  };
  p.area = [self](const linalg::Vector& sizes) { return self.area(sizes); };
  return p;
}

linalg::Vector Ico::humanReferenceSizing() {
  // Meets spec with margin: ~9.1 GHz, ~-72.2 dBc/Hz, ~0.38 mW on n5/TT.
  linalg::Vector s(kParamCount);
  s[kWn] = 2.0e-6;
  s[kWp] = 4.0e-6;
  s[kWst] = 6.0e-6;
  s[kIctrl] = 110e-6;
  return s;
}

}  // namespace trdse::circuits
