// Current-controlled oscillator on the synthetic "n5" card — the stand-in
// for the paper's second industrial case (Table V: TSMC 5nm ICO, design
// space 20^4, specs phase noise < -71 dBc/Hz and frequency > 8 GHz).
//
// Topology: three-stage current-starved ring oscillator. The control current
// is mirrored into every stage's top/bottom starving devices; oscillation
// frequency is measured from rising-edge crossings of a transient run kicked
// off the metastable DC point. Phase noise is estimated with a calibrated
// thermal-noise (Leeson/Razavi-style) formula from the measured frequency
// and supply power — the documented substitution for a noise analysis the
// paper ran in Spectre (see DESIGN.md).
#pragma once

#include "core/problem.hpp"
#include "sim/process.hpp"

namespace trdse::circuits {

class Ico {
 public:
  enum Param : std::size_t {
    kWn = 0,   ///< inverter NMOS width [m]
    kWp,       ///< inverter PMOS width [m]
    kWst,      ///< starving device width (PMOS side doubled) [m]
    kIctrl,    ///< control current [A]
    kParamCount
  };

  explicit Ico(const sim::ProcessCard& card);

  static const std::vector<std::string>& measurementNames();
  enum Meas : std::size_t { kFreqGhz = 0, kPnoiseDbc, kPowerMw, kMeasCount };

  /// 4 variables x 20 grid steps = 20^4 combinations (Table V).
  static core::DesignSpace designSpace(const sim::ProcessCard& card);

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const;

  /// Fused batch evaluation through the lane-blocked DC/transient engines
  /// (sim/op_batch.hpp), in chunks of sim::kSimLanes: results[i] is bitwise
  /// identical to evaluate(*sizes[i], corners[i]). Slots may mix sizings.
  void evaluateBatch(const linalg::Vector* const* sizes,
                     const sim::PvtCorner* corners, core::EvalResult* results,
                     std::size_t count) const;

  double area(const linalg::Vector& sizes) const;

  core::SizingProblem makeProblem(std::vector<sim::PvtCorner> corners,
                                  std::vector<core::Spec> specs) const;
  std::vector<core::Spec> defaultSpecs() const;

  /// Hand-derived reference sizing — the "Human" row of Table V.
  static linalg::Vector humanReferenceSizing();

  /// Phase-noise estimator at `offsetHz` from carrier `f0` for a ring
  /// oscillator burning `powerW` (exposed for tests/calibration).
  static double estimatePhaseNoiseDbc(double f0Hz, double powerW,
                                      double offsetHz, double tempK);

  const sim::ProcessCard& card() const { return card_; }

 private:
  const sim::ProcessCard& card_;
};

}  // namespace trdse::circuits
