#include "circuits/registry.hpp"

#include <stdexcept>
#include <utility>

#include "circuits/folded_cascode.hpp"
#include "circuits/ico.hpp"
#include "circuits/ldo.hpp"
#include "circuits/two_stage_opamp.hpp"

namespace trdse::circuits {

namespace {

std::string knownNames(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// Generic factory for the circuit classes (they all share the
/// makeProblem/defaultSpecs shape).
template <typename Circuit>
core::SizingProblem makeFor(const sim::ProcessCard& card,
                            std::vector<sim::PvtCorner> corners) {
  const Circuit circuit(card);
  return circuit.makeProblem(std::move(corners), circuit.defaultSpecs());
}

}  // namespace

Registry& Registry::global() {
  static Registry registry = [] {
    Registry r;
    r.add({"two_stage_opamp", "bsim45",
           "Miller two-stage opamp (paper V-B..D development vehicle)",
           makeFor<TwoStageOpamp>});
    r.add({"folded_cascode", "bsim45",
           "folded-cascode OTA (topology-generalization case)",
           makeFor<FoldedCascodeOta>});
    r.add({"ldo", "n6", "low-dropout regulator (Table IV industrial case)",
           makeFor<Ldo>});
    r.add({"ico", "n5",
           "current-controlled ring oscillator (Table V industrial case)",
           makeFor<Ico>});
    return r;
  }();
  return registry;
}

void Registry::add(CircuitEntry entry) {
  if (contains(entry.name))
    throw std::invalid_argument("circuits::Registry: duplicate circuit name \"" +
                                entry.name + "\"");
  entries_.push_back(std::move(entry));
}

bool Registry::contains(std::string_view name) const {
  for (const auto& e : entries_)
    if (e.name == name) return true;
  return false;
}

const CircuitEntry& Registry::at(std::string_view name) const {
  for (const auto& e : entries_)
    if (e.name == name) return e;
  throw std::invalid_argument("circuits::Registry: unknown circuit \"" +
                              std::string(name) + "\" (known: " +
                              knownNames(names()) + ")");
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

core::SizingProblem Registry::makeProblem(std::string_view circuit,
                                          std::vector<sim::PvtCorner> corners,
                                          std::string_view process) const {
  const CircuitEntry& entry = at(circuit);
  const std::string cardName =
      process.empty() ? entry.defaultProcess : std::string(process);
  const sim::ProcessCard* card = sim::findCard(cardName);
  if (card == nullptr)
    throw std::invalid_argument("circuits::Registry: unknown process \"" +
                                cardName + "\" for circuit \"" +
                                std::string(circuit) + "\"");
  if (corners.empty())
    corners = {{sim::ProcessCorner::kTT, card->nominalVdd, 27.0}};
  return entry.make(*card, std::move(corners));
}

}  // namespace trdse::circuits
