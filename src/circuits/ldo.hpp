// Low-dropout regulator on the synthetic "n6" advanced-node card — the stand-
// in for the paper's first industrial case (Table IV: TSMC 6nm LDO, design
// space ~1e29, specs loop gain > 40 dB and area < 650 area units).
//
// Structure: five-transistor error amplifier (NMOS pair, PMOS mirror, tail),
// PMOS pass device, resistive feedback divider, fixed load current + output
// capacitor. Loop gain is measured exactly with a series voltage-injection
// source at the error-amplifier feedback input (zero DC offset, so the
// closed-loop operating point is undisturbed; the pass-gate input draws no
// current, so T(s) = v_return / v_forward holds without loading correction).
#pragma once

#include "core/problem.hpp"
#include "sim/process.hpp"

namespace trdse::circuits {

class Ldo {
 public:
  enum Param : std::size_t {
    kW1 = 0,   ///< EA diff pair width [m]
    kW3,       ///< EA mirror width [m]
    kW5,       ///< EA tail width [m]
    kL1,       ///< EA pair length [m]
    kL3,       ///< EA mirror length [m]
    kL5,       ///< EA tail/bias length [m]
    kWp,       ///< pass PMOS width [m]
    kLp,       ///< pass PMOS length [m]
    kR1,       ///< divider top [ohm]
    kR2,       ///< divider bottom [ohm]
    kCc,       ///< compensation cap at EA output [F]
    kIbias,    ///< EA bias current [A]
    kParamCount
  };

  explicit Ldo(const sim::ProcessCard& card);

  static const std::vector<std::string>& measurementNames();
  enum Meas : std::size_t {
    kLoopGainDb = 0,
    kLoopPmDeg,
    kVoutErrMv,  ///< |vout - target| [mV]
    kAreaAu,     ///< layout area in the paper's area units
    kIqUa,       ///< quiescent current (excl. load) [µA]
    kMeasCount
  };

  /// 12 variables x 256 grid steps each ~= 10^29 combinations (Table IV).
  static core::DesignSpace designSpace(const sim::ProcessCard& card);

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const;

  /// Fused corner-batch evaluation through the lane-blocked DC/AC engines
  /// (sim/op_batch.hpp), in chunks of sim::kSimLanes: results[i] is bitwise
  /// identical to evaluate(sizes, corners[i]).
  void evaluateBatch(const linalg::Vector* const* sizes,
                     const sim::PvtCorner* corners, core::EvalResult* results,
                     std::size_t count) const;

  /// Area in the paper's reporting unit (calibrated so the human reference
  /// design sits at ~650).
  double area(const linalg::Vector& sizes) const;

  core::SizingProblem makeProblem(std::vector<sim::PvtCorner> corners,
                                  std::vector<core::Spec> specs) const;
  std::vector<core::Spec> defaultSpecs() const;

  /// Hand-derived reference sizing — the "Human" row of Table IV.
  static linalg::Vector humanReferenceSizing();

  const sim::ProcessCard& card() const { return card_; }

 private:
  const sim::ProcessCard& card_;
};

}  // namespace trdse::circuits
