#include "circuits/two_stage_opamp.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <vector>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/netlist.hpp"
#include "sim/op_batch.hpp"

namespace trdse::circuits {

namespace {
constexpr double kLoadCap = 400e-15;  // fixed CL [F]
constexpr double kBiasDiodeWidth = 2e-6;

/// AC sweep grid shared by the scalar and batched measurement paths.
std::vector<double> sweepFreqs() {
  return sim::AcSolver::logSpace(10.0, 20e9, 120);
}

/// Assemble the result from an operating point + completed sweep. Shared by
/// measure() and evaluateBatch() so both paths run the identical expressions.
core::EvalResult resultFromSweep(const TwoStageOpamp::Testbench& tb,
                                 const sim::DcResult& op,
                                 const std::vector<double>& freqs,
                                 const std::vector<std::complex<double>>& h) {
  const sim::LoopMetrics lm = sim::analyzeLoop(freqs, h);
  if (!lm.crossesUnity) return {};  // no meaningful UGBW / PM

  core::EvalResult r;
  r.ok = true;
  r.measurements.assign(TwoStageOpamp::kMeasCount, 0.0);
  r.measurements[TwoStageOpamp::kGainDb] = lm.dcGainDb;
  r.measurements[TwoStageOpamp::kUgbwHz] = lm.unityGainHz;
  r.measurements[TwoStageOpamp::kPmDeg] = lm.phaseMarginDeg;
  r.measurements[TwoStageOpamp::kPowerMw] =
      std::abs(op.vsourceCurrent(tb.vddSource)) * tb.vdd * 1e3;
  return r;
}
}  // namespace

TwoStageOpamp::TwoStageOpamp(const sim::ProcessCard& card) : card_(card) {}

const std::vector<std::string>& TwoStageOpamp::measurementNames() {
  static const std::vector<std::string> names = {"gain_db", "ugbw_hz", "pm_deg",
                                                 "power_mw"};
  return names;
}

core::DesignSpace TwoStageOpamp::designSpace(const sim::ProcessCard& card) {
  const double minL = card.minL;
  // 64^5 * 16^2 * 64 * 64 ~= 1.1e15 grid points: the paper's "10^14" scale.
  return core::DesignSpace({
      {"w1", 0.4e-6, 20e-6, 64, true},
      {"w3", 0.4e-6, 20e-6, 64, true},
      {"w5", 0.4e-6, 40e-6, 64, true},
      {"w6", 1.0e-6, 100e-6, 64, true},
      {"w7", 0.5e-6, 50e-6, 64, true},
      {"l12", 1.0 * minL, 8.0 * minL, 16, false},
      {"l67", 1.0 * minL, 8.0 * minL, 16, false},
      {"cc", 50e-15, 5e-12, 64, true},
      {"ibias", 1e-6, 50e-6, 64, true},
  });
}

TwoStageOpamp::Testbench TwoStageOpamp::buildTestbench(
    const linalg::Vector& sizes, const sim::PvtCorner& corner) const {
  assert(sizes.size() == kParamCount);
  const sim::MosParams nmos =
      sim::applyPvt(card_.nmos, sim::MosType::kNmos, corner, card_.tnomK);
  const sim::MosParams pmos =
      sim::applyPvt(card_.pmos, sim::MosType::kPmos, corner, card_.tnomK);

  Testbench tb;
  sim::Netlist& nl = tb.netlist;
  nl.tempK = corner.tempK();
  const sim::NodeId vdd = nl.node("vdd");
  const sim::NodeId inp = nl.node("inp");
  const sim::NodeId inn = nl.node("inn");
  const sim::NodeId tail = nl.node("tail");
  const sim::NodeId d1 = nl.node("d1");
  const sim::NodeId out1 = nl.node("out1");
  const sim::NodeId out = nl.node("out");
  const sim::NodeId bias = nl.node("bias");

  const double vcm = 0.62 * corner.vdd;
  const std::size_t vddSrc = nl.addVSource(vdd, sim::kGround, corner.vdd);
  // Differential AC drive: +/- half on each input -> H(s) = v(out) / v_diff.
  tb.inpSource = nl.addVSource(inp, sim::kGround, vcm, +0.5);
  tb.innSource = nl.addVSource(inn, sim::kGround, vcm, -0.5);
  nl.addISource(vdd, bias, sizes[kIbias]);

  using sim::MosType;
  const sim::MosGeometry g1{sizes[kW1], sizes[kL12], 1.0};
  const sim::MosGeometry g3{sizes[kW3], sizes[kL12], 1.0};
  const sim::MosGeometry g5{sizes[kW5], sizes[kL67], 1.0};
  const sim::MosGeometry g6{sizes[kW6], sizes[kL67], 1.0};
  const sim::MosGeometry g7{sizes[kW7], sizes[kL67], 1.0};
  const sim::MosGeometry g8{kBiasDiodeWidth, sizes[kL67], 1.0};

  nl.addMosfet("M1", d1, inp, tail, sim::kGround, MosType::kNmos, g1, nmos);
  nl.addMosfet("M2", out1, inn, tail, sim::kGround, MosType::kNmos, g1, nmos);
  nl.addMosfet("M3", d1, d1, vdd, vdd, MosType::kPmos, g3, pmos);
  nl.addMosfet("M4", out1, d1, vdd, vdd, MosType::kPmos, g3, pmos);
  nl.addMosfet("M5", tail, bias, sim::kGround, sim::kGround, MosType::kNmos, g5,
               nmos);
  nl.addMosfet("M6", out, out1, vdd, vdd, MosType::kPmos, g6, pmos);
  nl.addMosfet("M7", out, bias, sim::kGround, sim::kGround, MosType::kNmos, g7,
               nmos);
  nl.addMosfet("M8", bias, bias, sim::kGround, sim::kGround, MosType::kNmos, g8,
               nmos);

  nl.addCapacitor(out1, out, sizes[kCc]);
  nl.addCapacitor(out, sim::kGround, kLoadCap);

  // DC operating point, warm-started near a plausible bias state.
  linalg::Vector guess(nl.nodeCount(), 0.0);
  guess[static_cast<std::size_t>(vdd)] = corner.vdd;
  guess[static_cast<std::size_t>(inp)] = vcm;
  guess[static_cast<std::size_t>(inn)] = vcm;
  guess[static_cast<std::size_t>(tail)] = vcm - 0.4;
  guess[static_cast<std::size_t>(d1)] = corner.vdd - 0.5;
  guess[static_cast<std::size_t>(out1)] = corner.vdd - 0.5;
  guess[static_cast<std::size_t>(out)] = corner.vdd * 0.5;
  guess[static_cast<std::size_t>(bias)] = 0.5;

  tb.out = out;
  tb.vddSource = vddSrc;
  tb.initialGuess = std::move(guess);
  tb.vdd = corner.vdd;
  return tb;
}

core::EvalResult TwoStageOpamp::measure(const Testbench& tb) {
  const sim::DcSolver dc(tb.netlist);
  const sim::DcResult op = dc.solve(&tb.initialGuess);
  if (!op.converged) return {};

  const sim::AcSolver ac(tb.netlist, op);
  const auto freqs = sweepFreqs();
  return resultFromSweep(tb, op, freqs, ac.sweep(freqs, tb.out));
}

core::EvalResult TwoStageOpamp::evaluate(const linalg::Vector& sizes,
                                         const sim::PvtCorner& corner) const {
  return measure(buildTestbench(sizes, corner));
}

void TwoStageOpamp::evaluateBatch(const linalg::Vector* const* sizes,
                                  const sim::PvtCorner* corners,
                                  core::EvalResult* results,
                                  std::size_t count) const {
  const auto freqs = sweepFreqs();
  for (std::size_t off = 0; off < count; off += sim::kSimLanes) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(sim::kSimLanes, count - off));
    std::array<Testbench, sim::kSimLanes> tbs;
    std::array<const sim::Netlist*, sim::kSimLanes> nls{};
    std::array<const linalg::Vector*, sim::kSimLanes> guesses{};
    for (int l = 0; l < lanes; ++l) {
      tbs[static_cast<std::size_t>(l)] =
          buildTestbench(*sizes[off + static_cast<std::size_t>(l)],
                         corners[off + l]);
      nls[static_cast<std::size_t>(l)] = &tbs[static_cast<std::size_t>(l)].netlist;
      guesses[static_cast<std::size_t>(l)] =
          &tbs[static_cast<std::size_t>(l)].initialGuess;
    }
    const auto ops = sim::solveDcBatch(nls, guesses);

    std::array<const sim::Netlist*, sim::kSimLanes> acNls{};
    std::array<const sim::DcResult*, sim::kSimLanes> acOps{};
    bool anyAc = false;
    for (int l = 0; l < lanes; ++l) {
      if (!ops[static_cast<std::size_t>(l)].converged) continue;
      acNls[static_cast<std::size_t>(l)] = nls[static_cast<std::size_t>(l)];
      acOps[static_cast<std::size_t>(l)] = &ops[static_cast<std::size_t>(l)];
      anyAc = true;
    }

    std::array<std::vector<std::complex<double>>, sim::kSimLanes> h;
    if (anyAc) {
      sim::AcBatch ac(acNls, acOps);
      for (int l = 0; l < lanes; ++l)
        if (acOps[static_cast<std::size_t>(l)])
          h[static_cast<std::size_t>(l)].reserve(freqs.size());
      for (const double f : freqs) {
        ac.solveAt(f);
        for (int l = 0; l < lanes; ++l)
          if (acOps[static_cast<std::size_t>(l)])
            h[static_cast<std::size_t>(l)].push_back(
                ac.nodeVoltage(l, tbs[static_cast<std::size_t>(l)].out));
      }
      // A lane whose lane-blocked factorization went non-finite is replayed
      // through the scalar solver, which is the equivalence reference.
      for (int l = 0; l < lanes; ++l)
        if (acOps[static_cast<std::size_t>(l)] && !ac.laneFinite(l))
          h[static_cast<std::size_t>(l)] = ac.laneSolver(l)->sweep(
              freqs, tbs[static_cast<std::size_t>(l)].out);
    }

    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      results[off + li] = acOps[li]
                              ? resultFromSweep(tbs[li], ops[li], freqs, h[li])
                              : core::EvalResult{};
    }
  }
}

double TwoStageOpamp::area(const linalg::Vector& sizes) const {
  assert(sizes.size() == kParamCount);
  const double um2 = 1e12;  // m^2 -> µm^2
  double a = 0.0;
  a += 2.0 * sizes[kW1] * sizes[kL12];  // M1, M2
  a += 2.0 * sizes[kW3] * sizes[kL12];  // M3, M4
  a += sizes[kW5] * sizes[kL67];
  a += sizes[kW6] * sizes[kL67];
  a += sizes[kW7] * sizes[kL67];
  a += kBiasDiodeWidth * sizes[kL67];
  a *= um2;
  a += sizes[kCc] / 2e-15;  // MIM density ~2 fF/µm^2
  return a;
}

std::vector<core::Spec> TwoStageOpamp::defaultSpecs() const {
  using core::SpecKind;
  // Calibrated per card during bring-up (see tests/calibration) so the CSP is
  // hard but solvable on the TT corner.
  if (card_.name == "bsim22") {
    return {{"gain_db", SpecKind::kAtLeast, 47.0},
            {"ugbw_hz", SpecKind::kAtLeast, 80e6},
            {"pm_deg", SpecKind::kAtLeast, 60.0},
            {"power_mw", SpecKind::kAtMost, 0.35}};
  }
  return {{"gain_db", SpecKind::kAtLeast, 50.0},
          {"ugbw_hz", SpecKind::kAtLeast, 100e6},
          {"pm_deg", SpecKind::kAtLeast, 60.0},
          {"power_mw", SpecKind::kAtMost, 0.40}};
}

core::SizingProblem TwoStageOpamp::makeProblem(
    std::vector<sim::PvtCorner> corners, std::vector<core::Spec> specs) const {
  core::SizingProblem p;
  p.name = "two_stage_opamp_" + card_.name;
  p.space = designSpace(card_);
  p.measurementNames = measurementNames();
  p.specs = std::move(specs);
  p.corners = std::move(corners);
  const TwoStageOpamp self = *this;  // capture by value (card ref is stable)
  p.evaluate = [self](const linalg::Vector& sizes, const sim::PvtCorner& c) {
    return self.evaluate(sizes, c);
  };
  p.evaluateBatch = [self](const linalg::Vector* const* sizes,
                           const sim::PvtCorner* corners,
                           core::EvalResult* results, std::size_t count) {
    self.evaluateBatch(sizes, corners, results, count);
  };
  p.area = [self](const linalg::Vector& sizes) { return self.area(sizes); };
  return p;
}

}  // namespace trdse::circuits
