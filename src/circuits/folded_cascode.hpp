// Folded-cascode OTA — a second amplifier topology used to exercise the
// paper's claim that the framework generalizes at the *algorithm
// architecture* level: the identical agent sizes a different schematic with
// different measurement trade-offs (single high-gain stage, no Miller
// compensation, load-capacitor-dominated bandwidth).
//
//   M1/M2  NMOS input pair          M0   NMOS tail (mirrored bias)
//   M3/M4  PMOS folding sources     M5/M6 PMOS cascodes
//   M7/M8  NMOS cascodes            M9/M10 NMOS mirror bottom
//
// Bias rails for the cascode gates come from fixed fractions of the supply,
// as a testbench would provide them.
#pragma once

#include "core/problem.hpp"
#include "sim/process.hpp"

namespace trdse::circuits {

class FoldedCascodeOta {
 public:
  enum Param : std::size_t {
    kW1 = 0,   ///< input pair width [m]
    kW3,       ///< PMOS folding source width [m]
    kW5,       ///< PMOS cascode width [m]
    kW7,       ///< NMOS cascode width [m]
    kW9,       ///< NMOS mirror width [m]
    kL,        ///< shared channel length [m]
    kIbias,    ///< tail reference current [A]
    kParamCount
  };

  explicit FoldedCascodeOta(const sim::ProcessCard& card);

  static const std::vector<std::string>& measurementNames();
  enum Meas : std::size_t { kGainDb = 0, kUgbwHz, kPmDeg, kPowerMw, kMeasCount };

  static core::DesignSpace designSpace(const sim::ProcessCard& card);

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const;

  /// Fused corner-batch evaluation through the lane-blocked DC/AC engines
  /// (sim/op_batch.hpp), in chunks of sim::kSimLanes: results[i] is bitwise
  /// identical to evaluate(sizes, corners[i]).
  void evaluateBatch(const linalg::Vector* const* sizes,
                     const sim::PvtCorner* corners, core::EvalResult* results,
                     std::size_t count) const;

  double area(const linalg::Vector& sizes) const;

  core::SizingProblem makeProblem(std::vector<sim::PvtCorner> corners,
                                  std::vector<core::Spec> specs) const;
  std::vector<core::Spec> defaultSpecs() const;

  const sim::ProcessCard& card() const { return card_; }

 private:
  const sim::ProcessCard& card_;
};

}  // namespace trdse::circuits
