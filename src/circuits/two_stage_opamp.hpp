// Miller-compensated two-stage operational amplifier — the development
// vehicle of the paper's Sections V-B..V-D (BSIM 45nm and 22nm).
//
// Topology (Allen & Holberg style):
//   M1/M2  NMOS differential pair        M3/M4  PMOS current-mirror load
//   M5     NMOS tail current source      M6     PMOS common-source 2nd stage
//   M7     NMOS output current sink      M8     NMOS bias diode (Ibias ref)
//   Cc     Miller compensation           CL     fixed load capacitance
//
// Nine sizing variables span ~10^14 grid combinations, matching the paper's
// reported design-space size. The gain <-> phase-margin trade-off the paper
// highlights (high gain designs ride the unstable-PM cliff) emerges from the
// RHP zero gm6/Cc and the second pole gm6/CL.
#pragma once

#include "core/problem.hpp"
#include "sim/netlist.hpp"
#include "sim/process.hpp"

namespace trdse::circuits {

class TwoStageOpamp {
 public:
  /// Sizing vector layout (all SI units).
  enum Param : std::size_t {
    kW1 = 0,   ///< diff pair width [m]
    kW3,       ///< mirror load width [m]
    kW5,       ///< tail source width [m]
    kW6,       ///< 2nd-stage PMOS width [m]
    kW7,       ///< output sink width [m]
    kL12,      ///< 1st-stage length [m]
    kL67,      ///< 2nd-stage / bias length [m]
    kCc,       ///< Miller capacitor [F]
    kIbias,    ///< bias reference current [A]
    kParamCount
  };

  explicit TwoStageOpamp(const sim::ProcessCard& card);

  /// Measurement vector layout.
  static const std::vector<std::string>& measurementNames();
  enum Meas : std::size_t { kGainDb = 0, kUgbwHz, kPmDeg, kPowerMw, kMeasCount };

  /// The 9-D grid (~1e14 points).
  static core::DesignSpace designSpace(const sim::ProcessCard& card);

  /// A fully-stamped testbench: netlist + the handles measurement needs.
  struct Testbench {
    sim::Netlist netlist;
    sim::NodeId out = sim::kGround;
    std::size_t vddSource = 0;
    std::size_t inpSource = 0;  ///< non-inverting input vsource index
    std::size_t innSource = 0;  ///< inverting input vsource index
    linalg::Vector initialGuess;
    double vdd = 1.1;
  };

  /// Build the testbench netlist for a sizing under a corner; exposed so
  /// mismatch/yield analyses can perturb the devices before measuring.
  Testbench buildTestbench(const linalg::Vector& sizes,
                           const sim::PvtCorner& corner) const;

  /// DC + AC measurement of an (optionally perturbed) testbench.
  static core::EvalResult measure(const Testbench& tb);

  /// Run DC + AC and extract {gain, UGBW, PM, power}. ok=false when the
  /// operating point fails to converge or the response never crosses unity.
  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const;

  /// Fused corner-batch evaluation through the lane-blocked DC/AC engines
  /// (sim/op_batch.hpp), in chunks of sim::kSimLanes: results[i] is bitwise
  /// identical to evaluate(sizes, corners[i]).
  void evaluateBatch(const linalg::Vector* const* sizes,
                     const sim::PvtCorner* corners, core::EvalResult* results,
                     std::size_t count) const;

  /// Active + capacitor area estimate [µm^2].
  double area(const linalg::Vector& sizes) const;

  /// Ready-to-search problem definition on this card with default specs.
  core::SizingProblem makeProblem(std::vector<sim::PvtCorner> corners,
                                  std::vector<core::Spec> specs) const;

  /// Development-phase default specs for this card (calibrated so that a
  /// few-in-1e4 fraction of the space is feasible — hard but solvable).
  std::vector<core::Spec> defaultSpecs() const;

  const sim::ProcessCard& card() const { return card_; }

 private:
  const sim::ProcessCard& card_;
};

}  // namespace trdse::circuits
