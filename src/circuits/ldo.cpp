#include "circuits/ldo.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <vector>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/netlist.hpp"
#include "sim/op_batch.hpp"

namespace trdse::circuits {

namespace {
constexpr double kVref = 0.45;       // bandgap-ish reference [V]
constexpr double kLoadCurrent = 2e-3;  // [A]
// External output capacitor with its ESR: the classic external-cap LDO
// compensation — dominant pole at the output, ESR zero recovering phase.
constexpr double kLoadCap = 1e-6;   // [F]
constexpr double kLoadEsr = 0.4;    // [ohm]
constexpr double kBiasDiodeWidth = 1e-6;
// Area reporting scale chosen so the human reference design reads ~650 "au"
// (the paper's Table IV unit). Passives (MIM cap, poly resistors) use honest
// density proxies and dominate, as they do in a real LDO layout.
constexpr double kAreaScale = 1.3e11;
}  // namespace

Ldo::Ldo(const sim::ProcessCard& card) : card_(card) {}

const std::vector<std::string>& Ldo::measurementNames() {
  static const std::vector<std::string> names = {
      "loop_gain_db", "loop_pm_deg", "vout_err_mv", "area_au", "iq_ua"};
  return names;
}

core::DesignSpace Ldo::designSpace(const sim::ProcessCard& card) {
  const double minL = card.minL;
  // 12 vars x 256 steps: log10(256^12) ~= 28.9 — the paper's 1e29.
  return core::DesignSpace({
      {"w1", 0.3e-6, 30e-6, 256, true},
      {"w3", 0.3e-6, 30e-6, 256, true},
      {"w5", 0.3e-6, 60e-6, 256, true},
      {"l1", 1.0 * minL, 10.0 * minL, 256, false},
      {"l3", 1.0 * minL, 10.0 * minL, 256, false},
      {"l5", 1.0 * minL, 10.0 * minL, 256, false},
      {"wp", 20e-6, 2000e-6, 256, true},
      {"lp", 1.0 * minL, 4.0 * minL, 256, false},
      {"r1", 5e3, 500e3, 256, true},
      {"r2", 5e3, 500e3, 256, true},
      {"cc", 0.1e-12, 20e-12, 256, true},
      {"ibias", 0.5e-6, 50e-6, 256, true},
  });
}

namespace {

/// A stamped regulator testbench plus the handles measurement needs.
struct LdoTestbench {
  sim::Netlist netlist;
  sim::NodeId tap = sim::kGround;
  sim::NodeId fbin = sim::kGround;
  sim::NodeId vout = sim::kGround;
  std::size_t vddSource = 0;
  linalg::Vector initialGuess;
  double vtarget = 0.0;
};

/// Loop-sweep grid shared by the scalar and batched measurement paths.
std::vector<double> loopFreqs() {
  return sim::AcSolver::logSpace(10.0, 5e9, 110);
}

LdoTestbench buildLdoTestbench(const sim::ProcessCard& card,
                               const linalg::Vector& sizes,
                               const sim::PvtCorner& corner) {
  assert(sizes.size() == Ldo::kParamCount);
  const sim::MosParams nmos =
      sim::applyPvt(card.nmos, sim::MosType::kNmos, corner, card.tnomK);
  const sim::MosParams pmos =
      sim::applyPvt(card.pmos, sim::MosType::kPmos, corner, card.tnomK);

  LdoTestbench tb;
  sim::Netlist& nl = tb.netlist;
  nl.tempK = corner.tempK();
  const sim::NodeId vdd = nl.node("vdd");
  const sim::NodeId vref = nl.node("vref");
  const sim::NodeId fbin = nl.node("fbin");  // EA inverting input
  const sim::NodeId tap = nl.node("tap");    // divider tap
  const sim::NodeId tail = nl.node("tail");
  const sim::NodeId d1 = nl.node("d1");
  const sim::NodeId gate = nl.node("gate");  // EA output = pass gate
  const sim::NodeId vout = nl.node("vout");
  const sim::NodeId bias = nl.node("bias");

  const std::size_t vddSrc = nl.addVSource(vdd, sim::kGround, corner.vdd);
  nl.addVSource(vref, sim::kGround, kVref);
  // Series loop-gain injection: vdc = 0 keeps the closed loop intact in DC;
  // vac = 1 makes T(s) = v(tap) / v(fbin) in AC.
  nl.addVSource(fbin, tap, 0.0, 1.0);
  nl.addISource(vdd, bias, sizes[Ldo::kIbias]);
  nl.addISource(vout, sim::kGround, kLoadCurrent);

  using sim::MosType;
  const sim::MosGeometry g1{sizes[Ldo::kW1], sizes[Ldo::kL1], 1.0};
  const sim::MosGeometry g3{sizes[Ldo::kW3], sizes[Ldo::kL3], 1.0};
  const sim::MosGeometry g5{sizes[Ldo::kW5], sizes[Ldo::kL5], 1.0};
  const sim::MosGeometry gp{sizes[Ldo::kWp], sizes[Ldo::kLp], 1.0};
  const sim::MosGeometry g8{kBiasDiodeWidth, sizes[Ldo::kL5], 1.0};

  // Error amplifier: the PMOS pass stage inverts (gate up -> vout down), so
  // the EA must be non-inverting from fbin to its output for net negative
  // feedback. With the mirror diode on M1's drain, the M1 gate is the
  // non-inverting input: fbin drives M1, vref drives M2.
  nl.addMosfet("M1", d1, fbin, tail, sim::kGround, MosType::kNmos, g1, nmos);
  nl.addMosfet("M2", gate, vref, tail, sim::kGround, MosType::kNmos, g1, nmos);
  nl.addMosfet("M3", d1, d1, vdd, vdd, MosType::kPmos, g3, pmos);
  nl.addMosfet("M4", gate, d1, vdd, vdd, MosType::kPmos, g3, pmos);
  nl.addMosfet("M5", tail, bias, sim::kGround, sim::kGround, MosType::kNmos, g5,
               nmos);
  nl.addMosfet("M8", bias, bias, sim::kGround, sim::kGround, MosType::kNmos, g8,
               nmos);
  nl.addMosfet("MP", vout, gate, vdd, vdd, MosType::kPmos, gp, pmos);

  nl.addResistor(vout, tap, sizes[Ldo::kR1]);
  nl.addResistor(tap, sim::kGround, sizes[Ldo::kR2]);
  nl.addCapacitor(gate, sim::kGround, sizes[Ldo::kCc]);
  const sim::NodeId esr = nl.node("esr");
  nl.addCapacitor(vout, esr, kLoadCap);
  nl.addResistor(esr, sim::kGround, kLoadEsr);

  const double vtarget =
      kVref * (sizes[Ldo::kR1] + sizes[Ldo::kR2]) / sizes[Ldo::kR2];

  linalg::Vector guess(nl.nodeCount(), 0.0);
  guess[static_cast<std::size_t>(vdd)] = corner.vdd;
  guess[static_cast<std::size_t>(vref)] = kVref;
  guess[static_cast<std::size_t>(fbin)] = kVref;
  guess[static_cast<std::size_t>(tap)] = kVref;
  guess[static_cast<std::size_t>(tail)] = 0.1;
  guess[static_cast<std::size_t>(d1)] = corner.vdd - 0.4;
  guess[static_cast<std::size_t>(gate)] = corner.vdd - 0.4;
  guess[static_cast<std::size_t>(vout)] = vtarget;
  guess[static_cast<std::size_t>(bias)] = 0.4;

  tb.tap = tap;
  tb.fbin = fbin;
  tb.vout = vout;
  tb.vddSource = vddSrc;
  tb.initialGuess = std::move(guess);
  tb.vtarget = vtarget;
  return tb;
}

/// Append one loop-gain point T = v(tap)/v(fbin); false when the injection
/// node response is numerically dead (the scalar path bails out there).
/// Shared by both paths so the guard and the division are identical.
bool appendLoopPoint(const std::complex<double>& vTap,
                     const std::complex<double>& vFb,
                     std::vector<std::complex<double>>& t) {
  if (std::abs(vFb) < 1e-18) return false;
  t.push_back(vTap / vFb);
  return true;
}

/// Assemble the result from an operating point + completed loop sweep.
core::EvalResult resultFromLoop(const Ldo& ldo, const LdoTestbench& tb,
                                const sim::DcResult& op,
                                const std::vector<double>& freqs,
                                const std::vector<std::complex<double>>& t,
                                const linalg::Vector& sizes) {
  const sim::LoopMetrics lm = sim::analyzeLoop(freqs, t);

  core::EvalResult r;
  r.ok = true;
  r.measurements.assign(Ldo::kMeasCount, 0.0);
  r.measurements[Ldo::kLoopGainDb] = lm.dcGainDb;
  r.measurements[Ldo::kLoopPmDeg] = lm.crossesUnity ? lm.phaseMarginDeg : 0.0;
  r.measurements[Ldo::kVoutErrMv] =
      std::abs(op.nodeVoltage(tb.vout) - tb.vtarget) * 1e3;
  r.measurements[Ldo::kAreaAu] = ldo.area(sizes);
  // Quiescent = supply current minus the delivered load current.
  const double idd = std::abs(op.vsourceCurrent(tb.vddSource));
  r.measurements[Ldo::kIqUa] = std::max(0.0, idd - kLoadCurrent) * 1e6;
  return r;
}

}  // namespace

core::EvalResult Ldo::evaluate(const linalg::Vector& sizes,
                               const sim::PvtCorner& corner) const {
  const LdoTestbench tb = buildLdoTestbench(card_, sizes, corner);
  const sim::DcSolver dc(tb.netlist);
  const sim::DcResult op = dc.solve(&tb.initialGuess);
  if (!op.converged) return {};

  const sim::AcSolver ac(tb.netlist, op);
  const auto freqs = loopFreqs();
  // Loop gain: T = v(tap)/v(fbin) per the series-injection identity.
  std::vector<std::complex<double>> t;
  t.reserve(freqs.size());
  for (double f : freqs) {
    const auto x = ac.solveAt(f);
    if (!appendLoopPoint(ac.nodeVoltage(x, tb.tap), ac.nodeVoltage(x, tb.fbin),
                         t))
      return {};
  }
  return resultFromLoop(*this, tb, op, freqs, t, sizes);
}

void Ldo::evaluateBatch(const linalg::Vector* const* sizes,
                        const sim::PvtCorner* corners,
                        core::EvalResult* results, std::size_t count) const {
  const auto freqs = loopFreqs();
  for (std::size_t off = 0; off < count; off += sim::kSimLanes) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(sim::kSimLanes, count - off));
    std::array<LdoTestbench, sim::kSimLanes> tbs;
    std::array<const sim::Netlist*, sim::kSimLanes> nls{};
    std::array<const linalg::Vector*, sim::kSimLanes> guesses{};
    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      tbs[li] = buildLdoTestbench(card_, *sizes[off + li], corners[off + li]);
      nls[li] = &tbs[li].netlist;
      guesses[li] = &tbs[li].initialGuess;
    }
    const auto ops = sim::solveDcBatch(nls, guesses);

    std::array<const sim::Netlist*, sim::kSimLanes> acNls{};
    std::array<const sim::DcResult*, sim::kSimLanes> acOps{};
    bool anyAc = false;
    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      if (!ops[li].converged) continue;
      acNls[li] = nls[li];
      acOps[li] = &ops[li];
      anyAc = true;
    }

    std::array<std::vector<std::complex<double>>, sim::kSimLanes> t;
    std::array<bool, sim::kSimLanes> dead{};
    if (anyAc) {
      sim::AcBatch ac(acNls, acOps);
      for (int l = 0; l < lanes; ++l)
        if (acOps[static_cast<std::size_t>(l)])
          t[static_cast<std::size_t>(l)].reserve(freqs.size());
      for (const double f : freqs) {
        ac.solveAt(f);
        for (int l = 0; l < lanes; ++l) {
          const auto li = static_cast<std::size_t>(l);
          if (!acOps[li] || dead[li]) continue;
          if (!appendLoopPoint(ac.nodeVoltage(l, tbs[li].tap),
                               ac.nodeVoltage(l, tbs[li].fbin), t[li]))
            dead[li] = true;
        }
      }
      // A lane whose lane-blocked factorization went non-finite is replayed
      // through the scalar solver, which is the equivalence reference.
      for (int l = 0; l < lanes; ++l) {
        const auto li = static_cast<std::size_t>(l);
        if (!acOps[li] || ac.laneFinite(l)) continue;
        const sim::AcSolver* solver = ac.laneSolver(l);
        t[li].clear();
        dead[li] = false;
        for (double f : freqs) {
          const auto x = solver->solveAt(f);
          if (!appendLoopPoint(solver->nodeVoltage(x, tbs[li].tap),
                               solver->nodeVoltage(x, tbs[li].fbin), t[li])) {
            dead[li] = true;
            break;
          }
        }
      }
    }

    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      results[off + li] =
          (acOps[li] && !dead[li])
              ? resultFromLoop(*this, tbs[li], ops[li], freqs, t[li],
                               *sizes[off + li])
              : core::EvalResult{};
    }
  }
}

double Ldo::area(const linalg::Vector& sizes) const {
  assert(sizes.size() == kParamCount);
  double a = 0.0;
  a += 2.0 * sizes[kW1] * sizes[kL1];
  a += 2.0 * sizes[kW3] * sizes[kL3];
  a += sizes[kW5] * sizes[kL5];
  a += kBiasDiodeWidth * sizes[kL5];
  a += sizes[kWp] * sizes[kLp];            // pass device
  a += sizes[kCc] / 2e-3;                  // MIM cap at 2 fF/µm^2, in m^2
  a += (sizes[kR1] + sizes[kR2]) * 2e-14;  // poly resistor area proxy
  return a * kAreaScale;
}

std::vector<core::Spec> Ldo::defaultSpecs() const {
  using core::SpecKind;
  // The paper's spec row reads "loop gain > 40 dB, area < 650"; our EKV
  // substrate produces loop gains around 90-110 dB, so the gain limit is
  // re-centred to sit ~2 dB above the human reference exactly as the paper's
  // 40 dB sits above its 38 dB human row (see EXPERIMENTS.md).
  return {{"loop_gain_db", SpecKind::kAtLeast, 90.0},
          {"loop_pm_deg", SpecKind::kAtLeast, 45.0},
          {"vout_err_mv", SpecKind::kAtMost, 10.0},
          {"area_au", SpecKind::kAtMost, 650.0}};
}

core::SizingProblem Ldo::makeProblem(std::vector<sim::PvtCorner> corners,
                                     std::vector<core::Spec> specs) const {
  core::SizingProblem p;
  p.name = "ldo_" + card_.name;
  p.space = designSpace(card_);
  p.measurementNames = measurementNames();
  p.specs = std::move(specs);
  p.corners = std::move(corners);
  const Ldo self = *this;
  p.evaluate = [self](const linalg::Vector& sizes, const sim::PvtCorner& c) {
    return self.evaluate(sizes, c);
  };
  p.evaluateBatch = [self](const linalg::Vector* const* sizes,
                           const sim::PvtCorner* corners,
                           core::EvalResult* results, std::size_t count) {
    self.evaluateBatch(sizes, corners, results, count);
  };
  p.area = [self](const linalg::Vector& sizes) { return self.area(sizes); };
  return p;
}

linalg::Vector Ldo::humanReferenceSizing() {
  // A competent hand design sitting exactly where the paper's human row
  // sits: area at the 650 limit, every spec met except worst-corner loop
  // gain (~88.3 dB against the 90 dB spec on SS/0.70V/125C).
  linalg::Vector s(kParamCount);
  s[kW1] = 1.893e-6;
  s[kW3] = 4.266e-6;
  s[kW5] = 4.838e-7;
  s[kL1] = 2.217e-7;
  s[kL3] = 2.918e-7;
  s[kL5] = 1.032e-7;
  s[kWp] = 4.009e-4;
  s[kLp] = 9.939e-8;
  s[kR1] = 5.0e3;
  s[kR2] = 2.05e5;
  s[kCc] = 1.5e-12;
  s[kIbias] = 2.428e-5;
  return s;
}

}  // namespace trdse::circuits
