// Declarative scenario construction: every circuit the repo knows how to
// size — two-stage opamp, folded cascode, LDO, ICO — registered by name with
// its default process card, specs, and corner set, so examples, tests, and
// benches build a ready-to-run SizingProblem from a pair of strings instead
// of hand-wiring the circuit class, design space, value function, and
// evaluation lambda at every call site.
//
// The registry is the feed for eval::CircuitBackend (the non-callback
// EvalBackend) and is extensible: user code can add() its own entries and
// construct them through the same declarative path.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/problem.hpp"
#include "sim/process.hpp"

namespace trdse::circuits {

/// Factory: build a ready-to-run problem (default specs) on `card` with the
/// given sign-off corners.
using ProblemFactory = std::function<core::SizingProblem(
    const sim::ProcessCard& card, std::vector<sim::PvtCorner> corners)>;

/// One registered circuit scenario.
struct CircuitEntry {
  std::string name;            ///< registry key, e.g. "two_stage_opamp"
  std::string defaultProcess;  ///< card used when no process override given
  std::string description;     ///< one-line human description
  ProblemFactory make;         ///< problem builder with default specs
};

/// Name-keyed catalogue of sizing scenarios.
class Registry {
 public:
  /// The process-wide registry, pre-seeded with the four paper circuits:
  /// "two_stage_opamp" (bsim45), "folded_cascode" (bsim45), "ldo" (n6),
  /// "ico" (n5).
  static Registry& global();

  /// Register a scenario; throws std::invalid_argument on a duplicate name.
  void add(CircuitEntry entry);

  /// Whether `name` is registered.
  bool contains(std::string_view name) const;

  /// Entry for `name`; throws std::invalid_argument (naming the unknown
  /// circuit and listing the known ones) when absent.
  const CircuitEntry& at(std::string_view name) const;

  /// Registered names in registration order.
  std::vector<std::string> names() const;

  /// Build the named scenario. Empty `corners` means a single TT corner at
  /// the card's nominal supply and 27 C; empty `process` means the entry's
  /// default card. Unknown circuit or process names throw
  /// std::invalid_argument.
  core::SizingProblem makeProblem(std::string_view circuit,
                                  std::vector<sim::PvtCorner> corners = {},
                                  std::string_view process = {}) const;

 private:
  std::vector<CircuitEntry> entries_;
};

}  // namespace trdse::circuits
