// EvalBackend over a registered circuit scenario (circuits::Registry).
//
// Where CallbackBackend wraps a designer-supplied lambda, CircuitBackend is
// constructed from a (circuit, process) name pair: the registry builds the
// full SizingProblem (space, measurements, default specs, evaluator) and the
// backend exposes its evaluator to the engine. Examples and tests get a
// schedulable simulator for any of the four paper circuits from two strings.
#pragma once

#include <string>
#include <string_view>

#include "core/problem.hpp"
#include "eval/backend.hpp"

namespace trdse::eval {

class CircuitBackend final : public EvalBackend {
 public:
  /// Build from registry names. Empty `process` uses the circuit's default
  /// card; throws std::invalid_argument on unknown circuit/process names.
  explicit CircuitBackend(std::string_view circuit,
                          std::string_view process = {});

  /// "circuit:<problem name>" (e.g. "circuit:ico_n5") — used in per-backend
  /// timing reports.
  std::string_view name() const override { return label_; }

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const override {
    return problem_.evaluate(sizes, corner);
  }

  /// Registry circuits ship a fused corner-batch evaluator (lane width
  /// sim::kSimLanes, bitwise identical to the scalar path per slot).
  std::size_t batchWidth() const override {
    return problem_.evaluateBatch ? sim::kSimLanes : 1;
  }

  void evaluateBatch(const linalg::Vector* const* sizes,
                     const sim::PvtCorner* corners,
                     const EvalContext* contexts, core::EvalResult* results,
                     std::size_t count) const override {
    if (problem_.evaluateBatch) {
      (void)contexts;
      problem_.evaluateBatch(sizes, corners, results, count);
    } else {
      EvalBackend::evaluateBatch(sizes, corners, contexts, results, count);
    }
  }

  /// The registry-built problem (space, specs, measurement names, corners) —
  /// callers construct engines and value functions from it.
  const core::SizingProblem& problem() const { return problem_; }

 private:
  core::SizingProblem problem_;
  std::string label_;
};

}  // namespace trdse::eval
