// Memoization table for circuit evaluations.
//
// Keyed on (snapped grid indices, corner id): the design space is a finite
// grid and every agent simulates *snapped* points, so two requests with the
// same key are the same simulation — incumbent re-evaluations, RL episodes
// revisiting grid states, and brute-force-vs-progressive comparisons all
// re-ask for points already paid for. Backends are pure functions of
// (snapped sizes, corner), so serving the stored result is bitwise identical
// to re-simulating.
//
// SINGLE-ENGINE INVARIANT — not thread-safe, not shareable, by design: an
// EvalCache has exactly one owner, the EvalEngine it lives in, which probes
// before fanning work out and inserts after the join, always from that
// engine's coordinating thread. That is also what keeps cached accounting
// deterministic for any thread count. Never hand one EvalCache to two
// engines or touch it from worker threads; any *cross-job* result sharing
// must go through eval::SharedEvalCache (shared_cache.hpp), the striped-
// mutex sharded cache built for concurrent access, which engines attach via
// EvalEngine::attachSharedCache and the orchestrator publishes to at round
// barriers.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/problem.hpp"

namespace trdse::eval {

/// Identity of one evaluation: per-variable grid indices + corner index.
struct EvalKey {
  std::vector<std::size_t> indices;  ///< DesignSpace::indicesOf the sizing
  std::size_t cornerIndex = 0;       ///< position in the engine's corner list

  bool operator==(const EvalKey&) const = default;
};

struct EvalKeyHash {
  std::size_t operator()(const EvalKey& k) const {
    // splitmix64-style mixing over the index stream; grids are small, so
    // plain xor would collide across dimensions.
    std::uint64_t h = 0x9e3779b97f4a7c15ull + k.cornerIndex;
    for (const std::size_t idx : k.indices) {
      std::uint64_t z = h + 0x9e3779b97f4a7c15ull + idx;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      h = z ^ (z >> 31);
    }
    return static_cast<std::size_t>(h);
  }
};

/// The memo table: EvalKey -> EvalResult.
class EvalCache {
 public:
  /// Stored result for `key`, or nullptr when absent. The pointer is
  /// invalidated by the next insert().
  const core::EvalResult* find(const EvalKey& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Store (overwrites an existing entry — callers only ever re-insert the
  /// identical result, backends being pure).
  void insert(EvalKey key, core::EvalResult result) {
    map_.insert_or_assign(std::move(key), std::move(result));
  }

  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

  /// Every memoized entry (checkpoint access; iterate sorted for
  /// deterministic serialization — unordered_map order is not stable).
  const std::unordered_map<EvalKey, core::EvalResult, EvalKeyHash>& entries()
      const {
    return map_;
  }

 private:
  std::unordered_map<EvalKey, core::EvalResult, EvalKeyHash> map_;
};

}  // namespace trdse::eval
