#include "eval/fault_injector.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

namespace trdse::eval {

FaultInjector::FaultInjector(std::shared_ptr<const EvalBackend> inner,
                             std::shared_ptr<const sim::FaultPlan> plan,
                             std::string_view scope)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      scopeHash_(sim::hashScope(scope)) {
  if (!inner_)
    throw std::invalid_argument("FaultInjector: inner backend is null");
  if (!plan_) throw std::invalid_argument("FaultInjector: fault plan is null");
  label_ = "faulty:" + std::string(inner_->name());
}

core::EvalResult FaultInjector::evaluate(const linalg::Vector& sizes,
                                         const sim::PvtCorner& corner) const {
  return inner_->evaluate(sizes, corner);
}

core::EvalResult FaultInjector::evaluate(const linalg::Vector& sizes,
                                         const sim::PvtCorner& corner,
                                         const EvalContext& context) const {
  static const std::vector<std::size_t> kNoIndices;
  const std::vector<std::size_t>& indices =
      context.indices ? *context.indices : kNoIndices;
  const sim::FaultClass cls =
      plan_->decide(scopeHash_, indices, context.cornerIndex, context.attempt);
  switch (cls) {
    case sim::FaultClass::kNone:
      return inner_->evaluate(sizes, corner, context);
    case sim::FaultClass::kTimeout: {
      const double stall = plan_->config().timeoutStallSeconds;
      if (stall > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(stall));
      core::EvalResult r;
      r.ok = false;
      r.failure = sim::FaultClass::kTimeout;
      return r;
    }
    case sim::FaultClass::kNonConvergence: {
      core::EvalResult r;
      r.ok = false;
      r.failure = sim::FaultClass::kNonConvergence;
      return r;
    }
    case sim::FaultClass::kNonFinite: {
      core::EvalResult r = inner_->evaluate(sizes, corner, context);
      if (r.ok && !r.measurements.empty()) {
        // Corrupt a deterministically-chosen slot; the engine's finiteness
        // guard — not this decorator — is responsible for classifying it.
        std::uint64_t h = scopeHash_ ^ (context.cornerIndex * 0x9e3779b97f4a7c15ull);
        for (const std::size_t idx : indices) h = h * 0x100000001b3ull + idx;
        r.measurements[h % r.measurements.size()] =
            std::numeric_limits<double>::quiet_NaN();
      } else {
        // The inner result was already unusable; report the scheduled class
        // so accounting still sees a fault rather than a clean infeasible.
        r.ok = false;
        r.failure = sim::FaultClass::kNonFinite;
        r.measurements.clear();
      }
      return r;
    }
  }
  return inner_->evaluate(sizes, corner, context);
}

}  // namespace trdse::eval
