#include "eval/fault_injector.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

namespace trdse::eval {

FaultInjector::FaultInjector(std::shared_ptr<const EvalBackend> inner,
                             std::shared_ptr<const sim::FaultPlan> plan,
                             std::string_view scope)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      scopeHash_(sim::hashScope(scope)) {
  if (!inner_)
    throw std::invalid_argument("FaultInjector: inner backend is null");
  if (!plan_) throw std::invalid_argument("FaultInjector: fault plan is null");
  label_ = "faulty:" + std::string(inner_->name());
}

core::EvalResult FaultInjector::evaluate(const linalg::Vector& sizes,
                                         const sim::PvtCorner& corner) const {
  return inner_->evaluate(sizes, corner);
}

namespace {

/// Indices list of a context (empty when the caller supplied none).
const std::vector<std::size_t>& contextIndices(const EvalContext& context) {
  static const std::vector<std::size_t> kNoIndices;
  return context.indices ? *context.indices : kNoIndices;
}

/// Synthesize the timeout failure (optionally stalling first, so the
/// engine's wall-clock deadline machinery can be exercised).
core::EvalResult makeTimeoutResult(const sim::FaultPlan& plan) {
  const double stall = plan.config().timeoutStallSeconds;
  if (stall > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(stall));
  core::EvalResult r;
  r.ok = false;
  r.failure = sim::FaultClass::kTimeout;
  return r;
}

/// Apply the kNonFinite corruption to an inner result (shared by the scalar
/// and batch paths so the corrupted slot is identical in both).
void corruptNonFinite(std::uint64_t scopeHash, const EvalContext& context,
                      core::EvalResult& r) {
  if (r.ok && !r.measurements.empty()) {
    // Corrupt a deterministically-chosen slot; the engine's finiteness
    // guard — not this decorator — is responsible for classifying it.
    std::uint64_t h = scopeHash ^ (context.cornerIndex * 0x9e3779b97f4a7c15ull);
    for (const std::size_t idx : contextIndices(context))
      h = h * 0x100000001b3ull + idx;
    r.measurements[h % r.measurements.size()] =
        std::numeric_limits<double>::quiet_NaN();
  } else {
    // The inner result was already unusable; report the scheduled class
    // so accounting still sees a fault rather than a clean infeasible.
    r.ok = false;
    r.failure = sim::FaultClass::kNonFinite;
    r.measurements.clear();
  }
}

}  // namespace

core::EvalResult FaultInjector::evaluate(const linalg::Vector& sizes,
                                         const sim::PvtCorner& corner,
                                         const EvalContext& context) const {
  const sim::FaultClass cls = plan_->decide(
      scopeHash_, contextIndices(context), context.cornerIndex, context.attempt);
  switch (cls) {
    case sim::FaultClass::kNone:
      return inner_->evaluate(sizes, corner, context);
    case sim::FaultClass::kTimeout:
      return makeTimeoutResult(*plan_);
    case sim::FaultClass::kNonConvergence: {
      core::EvalResult r;
      r.ok = false;
      r.failure = sim::FaultClass::kNonConvergence;
      return r;
    }
    case sim::FaultClass::kNonFinite: {
      core::EvalResult r = inner_->evaluate(sizes, corner, context);
      corruptNonFinite(scopeHash_, context, r);
      return r;
    }
  }
  return inner_->evaluate(sizes, corner, context);
}

void FaultInjector::evaluateBatch(const linalg::Vector* const* sizes,
                                  const sim::PvtCorner* corners,
                                  const EvalContext* contexts,
                                  core::EvalResult* results,
                                  std::size_t count) const {
  // Draw every lane's fault class from the same identity tuple the scalar
  // override uses, then forward the lanes that need the inner simulator
  // (clean lanes and kNonFinite lanes, whose corruption rides on a real
  // result) as one compacted inner batch. The inner batch is bitwise
  // per-slot identical to scalar inner calls, and the synthesized failures /
  // corruption are computed by the shared helpers, so a fault scheduled for
  // (sizing, corner, attempt) lands in exactly the same slot with exactly
  // the same bytes on either dispatch path.
  std::vector<sim::FaultClass> cls(count);
  std::vector<std::size_t> fwd;
  std::vector<const linalg::Vector*> fwdSizes;
  std::vector<sim::PvtCorner> fwdCorners;
  std::vector<EvalContext> fwdContexts;
  fwd.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    cls[i] = plan_->decide(scopeHash_, contextIndices(contexts[i]),
                           contexts[i].cornerIndex, contexts[i].attempt);
    if (cls[i] == sim::FaultClass::kNone ||
        cls[i] == sim::FaultClass::kNonFinite) {
      fwd.push_back(i);
      fwdSizes.push_back(sizes[i]);
      fwdCorners.push_back(corners[i]);
      fwdContexts.push_back(contexts[i]);
    }
  }
  std::vector<core::EvalResult> fwdResults(fwd.size());
  if (!fwd.empty())
    inner_->evaluateBatch(fwdSizes.data(), fwdCorners.data(),
                          fwdContexts.data(), fwdResults.data(), fwd.size());
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < count; ++i) {
    switch (cls[i]) {
      case sim::FaultClass::kNone:
        results[i] = std::move(fwdResults[cursor++]);
        break;
      case sim::FaultClass::kTimeout:
        results[i] = makeTimeoutResult(*plan_);
        break;
      case sim::FaultClass::kNonConvergence: {
        core::EvalResult r;
        r.ok = false;
        r.failure = sim::FaultClass::kNonConvergence;
        results[i] = std::move(r);
        break;
      }
      case sim::FaultClass::kNonFinite: {
        core::EvalResult r = std::move(fwdResults[cursor++]);
        corruptNonFinite(scopeHash_, contexts[i], r);
        results[i] = std::move(r);
        break;
      }
    }
  }
}

}  // namespace trdse::eval
