#include "eval/circuit_backend.hpp"

#include "circuits/registry.hpp"

namespace trdse::eval {

CircuitBackend::CircuitBackend(std::string_view circuit,
                               std::string_view process)
    : problem_(circuits::Registry::global().makeProblem(circuit, {}, process)),
      // The problem name already encodes the resolved circuit + card (e.g.
      // "ico_n5"), so the label cannot drift from what actually runs.
      label_("circuit:" + problem_.name) {}

}  // namespace trdse::eval
