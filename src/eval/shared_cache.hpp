// Cross-job evaluation memo — the thread-safe sibling of EvalCache.
//
// Concurrent orchestrator jobs sizing the *same* circuit keep re-asking for
// the same (snapped grid point, corner) simulations: baseline comparisons run
// several strategies over one problem, and seeds differ while the grid does
// not. The SharedEvalCache lets every job's EvalEngine serve such requests
// from work another job already paid for.
//
// Thread safety comes from striping: entries hash onto a power-of-two number
// of shards, each guarded by its own mutex, so concurrent jobs probing
// different keys rarely contend. Entries are namespaced by a *scope* id
// (registered per circuit/problem name), so two circuits that happen to share
// grid indices can never collide.
//
// Determinism contract (docs/ORCHESTRATION.md): the cache itself is a plain
// concurrent map — *when* an entry becomes visible is up to the caller. The
// orch::Scheduler only inserts at round barriers (EvalEngine::publishShared,
// in job order), so lookups during a round see a state that depends on the
// round number alone, never on thread interleaving; per-job hit/miss
// accounting is then bitwise identical for any scheduler thread count.
// Backends are pure, so a served entry is bitwise identical to re-simulating.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "eval/eval_cache.hpp"

namespace trdse::io {
class SectionReader;
class SectionWriter;
}  // namespace trdse::io

namespace trdse::eval {

/// Sharded (striped-mutex) cross-job memo: (scope, EvalKey) -> EvalResult.
class SharedEvalCache {
 public:
  /// @param shards  stripe count; rounded up to a power of two, minimum 1.
  explicit SharedEvalCache(std::size_t shards = 16);

  SharedEvalCache(const SharedEvalCache&) = delete;
  SharedEvalCache& operator=(const SharedEvalCache&) = delete;

  /// Id of the named scope (a circuit/problem name), registering it on first
  /// use. Jobs evaluating the same circuit must use the same scope string to
  /// share results; distinct scopes never collide.
  std::size_t scopeId(std::string_view scope);

  /// Registered scope names, indexed by scope id.
  std::vector<std::string> scopeNames() const;

  /// Copy the entry for (scope, key) into `out`; returns whether it existed.
  /// Tally lands on the owning shard's hit/miss counters either way.
  bool find(std::size_t scope, const EvalKey& key, core::EvalResult& out);

  /// Store a result (insert_or_assign: publishers only ever re-insert the
  /// identical result, backends being pure — see EvalCache::insert).
  /// Defense in depth against cross-job poisoning: a faulty result (failure
  /// != kNone) or an ok result with non-finite measurements throws
  /// std::invalid_argument — one job's fault must never become another job's
  /// "cached" truth, even if an engine-side guard regresses.
  void insert(std::size_t scope, const EvalKey& key, core::EvalResult result);

  /// Number of stripes (power of two).
  std::size_t shardCount() const { return shards_.size(); }
  /// Total entries across all shards (locks each shard in turn).
  std::size_t size() const;

  /// Per-shard telemetry (hit/miss tallies from find(), entry count).
  struct ShardCounters {
    std::size_t hits = 0;     ///< find() calls that returned an entry
    std::size_t misses = 0;   ///< find() calls that found nothing
    std::size_t inserts = 0;  ///< insert() calls (including re-inserts)
    std::size_t entries = 0;  ///< distinct keys currently stored
  };
  /// Counters of one shard.
  ShardCounters shardStats(std::size_t shard) const;
  /// Counters summed over every shard.
  ShardCounters totals() const;
  /// Fold externally-tallied probe counters into one shard. The distributed
  /// coordinator merges each worker's mirror-cache hit/miss deltas here at
  /// round barriers; because shard assignment is a pure function of the key
  /// and sums are order-independent, the merged telemetry is bitwise
  /// identical to the in-process run's. Throws std::out_of_range on a shard
  /// index past shardCount().
  void addProbes(std::size_t shard, std::size_t hits, std::size_t misses);

  // ---- Eviction support (the serve daemon's persistent-cache byte budget;
  // docs/SERVICE.md). Scopes are the eviction granularity: a circuit's
  // entries only pay off together, so the daemon evicts whole
  // least-recently-used scopes when the persisted cache exceeds its budget.
  // The LRU ordering itself lives with the caller (the daemon touches scopes
  // at deterministic admission/round points) — keeping it out of find()
  // preserves the orchestrator's bitwise thread-count invariance.

  /// Approximate heap bytes of one scope's entries: measurement payloads,
  /// key index vectors, and a fixed per-entry overhead. A pure function of
  /// the stored entries, so budget decisions are deterministic.
  std::size_t approxScopeBytes(std::size_t scope) const;
  /// approxScopeBytes summed over every registered scope.
  std::size_t approxBytes() const;
  /// Entries currently stored under one scope.
  std::size_t entriesInScope(std::size_t scope) const;
  /// Drop every entry of `scope` (the scope name stays registered, so ids of
  /// other scopes are unaffected); returns the number of entries dropped.
  /// Hit/miss/insert tallies are history and keep counting.
  std::size_t evictScope(std::size_t scope);

  /// Serialize scopes, entries (sorted by scope, corner, indices — identical
  /// states produce identical bytes) and per-shard counters for the
  /// orchestrator's write-ahead journal. Not thread-safe against concurrent
  /// writers: call from the scheduler's round barrier only.
  void saveState(io::SectionWriter& w) const;
  /// Replace all scopes/entries/counters with state written by saveState.
  /// Counters are restored exactly (not recomputed), so a resumed run's
  /// shard telemetry continues the uninterrupted run's bitwise.
  void restoreState(io::SectionReader& r);

 private:
  /// Scope-qualified key (the map key of every shard).
  struct ScopedKey {
    std::size_t scope = 0;
    EvalKey key;
    bool operator==(const ScopedKey&) const = default;
  };
  struct ScopedKeyHash {
    std::size_t operator()(const ScopedKey& k) const {
      // Re-mix the EvalKey hash with the scope so scopes land on different
      // shards/buckets even for identical grid indices.
      std::uint64_t z = EvalKeyHash{}(k.key) + 0x9e3779b97f4a7c15ull +
                        static_cast<std::uint64_t>(k.scope);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ScopedKey, core::EvalResult, ScopedKeyHash> map;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t inserts = 0;
  };

  Shard& shardOf(const ScopedKey& k) {
    return shards_[ScopedKeyHash{}(k) & (shards_.size() - 1)];
  }

  /// vector sized once at construction; Shard is neither movable nor copyable
  /// (mutex member), which is fine because the vector never grows.
  std::vector<Shard> shards_;

  mutable std::mutex scopeMu_;
  std::vector<std::string> scopes_;
};

}  // namespace trdse::eval
