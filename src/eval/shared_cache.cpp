#include "eval/shared_cache.hpp"

#include <utility>

namespace trdse::eval {

namespace {

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SharedEvalCache::SharedEvalCache(std::size_t shards)
    : shards_(roundUpPow2(shards == 0 ? 1 : shards)) {}

std::size_t SharedEvalCache::scopeId(std::string_view scope) {
  const std::lock_guard<std::mutex> lock(scopeMu_);
  for (std::size_t i = 0; i < scopes_.size(); ++i)
    if (scopes_[i] == scope) return i;
  scopes_.emplace_back(scope);
  return scopes_.size() - 1;
}

std::vector<std::string> SharedEvalCache::scopeNames() const {
  const std::lock_guard<std::mutex> lock(scopeMu_);
  return scopes_;
}

bool SharedEvalCache::find(std::size_t scope, const EvalKey& key,
                           core::EvalResult& out) {
  const ScopedKey sk{scope, key};
  Shard& shard = shardOf(sk);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(sk);
  if (it == shard.map.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  out = it->second;
  return true;
}

void SharedEvalCache::insert(std::size_t scope, const EvalKey& key,
                             core::EvalResult result) {
  ScopedKey sk{scope, key};
  Shard& shard = shardOf(sk);
  const std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.inserts;
  shard.map.insert_or_assign(std::move(sk), std::move(result));
}

std::size_t SharedEvalCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

SharedEvalCache::ShardCounters SharedEvalCache::shardStats(
    std::size_t shard) const {
  const Shard& s = shards_[shard];
  const std::lock_guard<std::mutex> lock(s.mu);
  return {s.hits, s.misses, s.inserts, s.map.size()};
}

SharedEvalCache::ShardCounters SharedEvalCache::totals() const {
  ShardCounters t;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardCounters s = shardStats(i);
    t.hits += s.hits;
    t.misses += s.misses;
    t.inserts += s.inserts;
    t.entries += s.entries;
  }
  return t;
}

}  // namespace trdse::eval
