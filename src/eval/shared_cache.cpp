#include "eval/shared_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "io/state_io.hpp"
#include "sim/fault.hpp"

namespace trdse::eval {

namespace {

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SharedEvalCache::SharedEvalCache(std::size_t shards)
    : shards_(roundUpPow2(shards == 0 ? 1 : shards)) {}

std::size_t SharedEvalCache::scopeId(std::string_view scope) {
  const std::lock_guard<std::mutex> lock(scopeMu_);
  for (std::size_t i = 0; i < scopes_.size(); ++i)
    if (scopes_[i] == scope) return i;
  scopes_.emplace_back(scope);
  return scopes_.size() - 1;
}

std::vector<std::string> SharedEvalCache::scopeNames() const {
  const std::lock_guard<std::mutex> lock(scopeMu_);
  return scopes_;
}

bool SharedEvalCache::find(std::size_t scope, const EvalKey& key,
                           core::EvalResult& out) {
  const ScopedKey sk{scope, key};
  Shard& shard = shardOf(sk);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(sk);
  if (it == shard.map.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  out = it->second;
  return true;
}

void SharedEvalCache::insert(std::size_t scope, const EvalKey& key,
                             core::EvalResult result) {
  if (result.failure != sim::FaultClass::kNone)
    throw std::invalid_argument(
        "SharedEvalCache::insert: refusing to publish a result with fault "
        "class '" +
        std::string(sim::faultClassName(result.failure)) + "'");
  if (result.ok &&
      std::any_of(result.measurements.begin(), result.measurements.end(),
                  [](double x) { return !std::isfinite(x); }))
    throw std::invalid_argument(
        "SharedEvalCache::insert: refusing to publish non-finite "
        "measurements");
  ScopedKey sk{scope, key};
  Shard& shard = shardOf(sk);
  const std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.inserts;
  shard.map.insert_or_assign(std::move(sk), std::move(result));
}

std::size_t SharedEvalCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

SharedEvalCache::ShardCounters SharedEvalCache::shardStats(
    std::size_t shard) const {
  const Shard& s = shards_[shard];
  const std::lock_guard<std::mutex> lock(s.mu);
  return {s.hits, s.misses, s.inserts, s.map.size()};
}

void SharedEvalCache::addProbes(std::size_t shard, std::size_t hits,
                                std::size_t misses) {
  Shard& s = shards_.at(shard);
  const std::lock_guard<std::mutex> lock(s.mu);
  s.hits += hits;
  s.misses += misses;
}

std::size_t SharedEvalCache::approxScopeBytes(std::size_t scope) const {
  // Per-entry estimate: the stored EvalResult's measurement vector, the key's
  // grid-index vector, and a fixed allowance for the map node + EvalResult
  // scalars. Precision does not matter — the byte budget is a rough dial —
  // but determinism does, so only logical contents feed the sum.
  constexpr std::size_t kEntryOverhead = 96;
  std::size_t bytes = 0;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [k, v] : s.map) {
      if (k.scope != scope) continue;
      bytes += kEntryOverhead + k.key.indices.size() * sizeof(std::size_t) +
               v.measurements.size() * sizeof(double);
    }
  }
  return bytes;
}

std::size_t SharedEvalCache::approxBytes() const {
  std::size_t bytes = 0;
  const std::size_t scopes = scopeNames().size();
  for (std::size_t s = 0; s < scopes; ++s) bytes += approxScopeBytes(s);
  return bytes;
}

std::size_t SharedEvalCache::entriesInScope(std::size_t scope) const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [k, v] : s.map)
      if (k.scope == scope) ++n;
  }
  return n;
}

std::size_t SharedEvalCache::evictScope(std::size_t scope) {
  std::size_t dropped = 0;
  for (Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.map.begin(); it != s.map.end();) {
      if (it->first.scope == scope) {
        it = s.map.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

void SharedEvalCache::saveState(io::SectionWriter& w) const {
  w.u64(shards_.size());
  {
    const std::lock_guard<std::mutex> lock(scopeMu_);
    w.u64(scopes_.size());
    for (const std::string& s : scopes_) w.str(s);
  }
  // Entries sorted by (scope, corner, indices): unordered_map iteration
  // order is not stable, and the journal's bytes must be a pure function of
  // the cache's logical contents.
  std::vector<std::pair<ScopedKey, const core::EvalResult*>> entries;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [k, v] : s.map) entries.emplace_back(k, &v);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.first.scope != b.first.scope)
                return a.first.scope < b.first.scope;
              if (a.first.key.cornerIndex != b.first.key.cornerIndex)
                return a.first.key.cornerIndex < b.first.key.cornerIndex;
              return a.first.key.indices < b.first.key.indices;
            });
  w.u64(entries.size());
  for (const auto& [k, v] : entries) {
    w.u64(k.scope);
    w.indexVec(k.key.indices);
    w.u64(k.key.cornerIndex);
    io::writeEvalResult(w, *v);
  }
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    w.u64(s.hits);
    w.u64(s.misses);
    w.u64(s.inserts);
  }
}

void SharedEvalCache::restoreState(io::SectionReader& r) {
  const std::uint64_t shardCount = r.u64();
  if (shardCount != shards_.size())
    r.fail("shared cache has " + std::to_string(shardCount) +
           " shards in the snapshot but " + std::to_string(shards_.size()) +
           " in this run (per-shard counters cannot be remapped)");
  const std::uint64_t scopeCount = r.u64();
  std::vector<std::string> scopes;
  scopes.reserve(scopeCount);
  for (std::uint64_t i = 0; i < scopeCount; ++i) scopes.push_back(r.str());
  const std::uint64_t entryCount = r.u64();
  for (Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
    s.hits = s.misses = s.inserts = 0;
  }
  for (std::uint64_t i = 0; i < entryCount; ++i) {
    ScopedKey sk;
    sk.scope = r.u64();
    if (sk.scope >= scopeCount)
      r.fail("entry scope id " + std::to_string(sk.scope) +
             " out of range (" + std::to_string(scopeCount) + " scopes)");
    sk.key.indices = r.indexVec();
    sk.key.cornerIndex = r.u64();
    core::EvalResult result = io::readEvalResult(r);
    if (result.failure != sim::FaultClass::kNone)
      r.fail("shared cache entry carries fault class '" +
             std::string(sim::faultClassName(result.failure)) + "'");
    if (result.ok &&
        std::any_of(result.measurements.begin(), result.measurements.end(),
                    [](double x) { return !std::isfinite(x); }))
      r.fail("shared cache entry carries non-finite measurements");
    Shard& shard = shardOf(sk);
    const std::lock_guard<std::mutex> lock(shard.mu);
    // Bypass insert(): its counter bump would double-count — the journaled
    // per-shard counters below already include these entries' inserts.
    shard.map.insert_or_assign(std::move(sk), std::move(result));
  }
  for (Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    s.hits = r.u64();
    s.misses = r.u64();
    s.inserts = r.u64();
  }
  {
    const std::lock_guard<std::mutex> lock(scopeMu_);
    scopes_ = std::move(scopes);
  }
}

SharedEvalCache::ShardCounters SharedEvalCache::totals() const {
  ShardCounters t;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardCounters s = shardStats(i);
    t.hits += s.hits;
    t.misses += s.misses;
    t.inserts += s.inserts;
    t.entries += s.entries;
  }
  return t;
}

}  // namespace trdse::eval
