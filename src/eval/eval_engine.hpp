// The unified evaluation engine — Spice(X) as a batched, schedulable,
// memoizing service.
//
// Every consumer of circuit evaluations (PvtSearch, LocalExplorer, the RL
// SizingEnv, sessions, examples) routes its (sizing, corner) requests through
// one engine per search, which:
//   - dedups and memoizes requests through an EvalCache keyed on (snapped
//     grid indices, corner id) — re-simulating an already-paid-for point
//     costs zero EDA blocks;
//   - fans real simulations out across a common::ThreadPool and merges
//     results in request order, so outcomes are identical for any thread
//     count;
//   - owns the EdaLedger: each logical request records one block, with cache
//     hits flagged `cached` (zero EDA time, tallied separately), so the
//     (corner, kind, meetsSpec) block sequence — and therefore any seeded
//     search trajectory — is bitwise identical with caching on or off.
//
// Timing (EvalStats::backendSeconds) is measurement-only: it never feeds back
// into scheduling, so it is excluded from the determinism guarantees.
//
// Fault tolerance: the engine classifies every backend attempt (the result's
// FaultClass, a wall-clock deadline when RetryPolicy::timeoutSeconds is set,
// and a finiteness guard over ok results), retries transient faults up to
// RetryPolicy::maxAttempts with deterministic backoff charged to the ledger,
// and surfaces an exhausted request as a typed failed EvalResult — never an
// exception through the batch, and never a cache insert (a poisoned result
// must not be replayable from any memo).
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/problem.hpp"
#include "core/value.hpp"
#include "eval/backend.hpp"
#include "eval/eval_cache.hpp"
#include "eval/shared_cache.hpp"
#include "pvt/ledger.hpp"
#include "sim/fault.hpp"
#include "sim/sim_profile.hpp"

namespace trdse::io {
class SectionReader;
class SectionWriter;
}  // namespace trdse::io

namespace trdse::eval {

/// How the engine handles faulted attempts (docs/ROBUSTNESS.md). Defaults
/// retry transient faults twice; with `maxAttempts = 1` every fault is
/// immediately terminal (the pre-fault-tolerance behavior).
struct RetryPolicy {
  /// Total attempts per request, including the first (>= 1; 0 reads as 1).
  std::size_t maxAttempts = 3;
  /// Deterministic backoff charged to the ledger before retry k (0-based
  /// first retry): min(backoffBase << k, backoffCap) abstract units. Units
  /// are bookkeeping, not sleeps — fault scenarios stay fast and bitwise
  /// reproducible.
  std::size_t backoffBase = 1;
  std::size_t backoffCap = 8;
  /// Per-request wall-clock deadline (seconds); attempts running longer are
  /// classified kTimeout and discarded. 0 disables. Like backendSeconds,
  /// wall-clock classification is excluded from the determinism contract —
  /// leave it 0 wherever bitwise reproducibility matters.
  double timeoutSeconds = 0.0;
};

/// Engine knobs.
struct EvalEngineConfig {
  /// Memoize results on (snapped grid indices, corner id). Cache hits cost
  /// zero EDA blocks; seeded search outcomes are bitwise identical on/off.
  bool cacheEvals = true;
  /// Worker threads for fanning a batch's real simulations out:
  /// 1 = inline/serial (default), 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Record one EdaBlock per logical request (and evaluate meetsSpec for
  /// it). Long-running consumers that never render a timeline — the RL
  /// SizingEnv — turn this off so the ledger does not grow unbounded;
  /// EvalStats counters are kept either way.
  bool recordLedger = true;
  /// Submit cache misses as corner-batches to backends whose batchWidth()
  /// exceeds 1 (the lane-blocked simulator, sim/op_batch.hpp). Because the
  /// batch contract is bitwise per-slot equivalence with the scalar path,
  /// results, ledgers, and stats are identical either way — the knob only
  /// changes how fast misses simulate. Off = one backend call per miss (the
  /// pre-batching behavior, and the scalar reference the differential tests
  /// compare against).
  bool batchedSim = true;
  /// Retry/timeout handling for faulted attempts.
  RetryPolicy retry{};
};

/// Aggregate engine counters. `requests` is the logical evaluation count the
/// search budget is charged against; `simulated` is what actually hit the
/// backend (EDA blocks consumed); `cacheHits` is the blocks saved.
struct EvalStats {
  std::size_t requests = 0;    ///< logical evaluations (simulated + hits)
  std::size_t simulated = 0;   ///< requests resolved by a clean simulation
  std::size_t cacheHits = 0;   ///< requests served from this engine's memo
  std::size_t sharedHits = 0;  ///< requests served from the cross-job cache
  double backendSeconds = 0.0; ///< wall time summed over backend calls
  // Fault accounting. `requests == simulated + cacheHits + sharedHits +
  // failures` always holds — a failed request is neither simulated (no
  // trustworthy result) nor cached (poison never enters a memo).
  std::size_t attempts = 0;     ///< backend invocations incl. retries
  std::size_t faults = 0;       ///< attempts classified as faulted
  std::size_t failures = 0;     ///< requests failed after retry exhaustion
  std::size_t backoffUnits = 0; ///< deterministic backoff charged for retries
  // Simulator phase attribution (sim/sim_profile.hpp): nanoseconds of
  // device-eval / stamp / factor / solve time sampled as deltas of the
  // process-wide phase counters around this engine's backend dispatches.
  // Exactly zero unless sim profiling is enabled (the `trdse run` report
  // turns it on); attribution is exact when one engine dispatches at a time.
  // Measurement-only like backendSeconds — excluded from determinism
  // guarantees, never persisted in checkpoints, never shipped in harvests.
  std::uint64_t simDeviceEvalNs = 0;
  std::uint64_t simStampNs = 0;
  std::uint64_t simFactorNs = 0;
  std::uint64_t simSolveNs = 0;

  std::size_t blocksSaved() const { return cacheHits + sharedHits; }
  double hitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(cacheHits + sharedHits) /
                               static_cast<double>(requests);
  }
};

/// The first request (in deterministic request order) that exhausted its
/// retries — the engine keeps it so quarantine reasons are reproducible
/// strings, not whichever thread lost a race.
struct FailureRecord {
  bool valid = false;       ///< whether any request has failed yet
  std::size_t request = 0;  ///< 0-based index in this engine's request stream
  std::size_t cornerIndex = 0;                       ///< corner it failed on
  sim::FaultClass cls = sim::FaultClass::kNone;      ///< terminal fault class
  std::size_t attempts = 0;                          ///< attempts consumed
};

/// Whether an EvalResult meets every spec — used for ledger bookkeeping.
using MeetsSpecFn = std::function<bool(const core::EvalResult&)>;

/// The standard ledger predicate: simulation converged and every spec of
/// `value` holds. Shared by every engine built around a problem's specs.
MeetsSpecFn makeMeetsSpec(core::ValueFunction value);

/// Batched, memoizing, thread-parallel evaluation front-end over an
/// EvalBackend. Not thread-safe itself: one engine per search/session, called
/// from the coordinating thread (the internal pool carries the parallelism).
class EvalEngine {
 public:
  /// @param backend    the simulator service (shared so sessions can reuse it)
  /// @param space      design space used to derive snapped cache keys
  /// @param corners    corner list requests index into
  /// @param meetsSpec  ledger predicate (ok + all specs); may be empty, then
  ///                   every block is recorded as not meeting spec
  EvalEngine(std::shared_ptr<const EvalBackend> backend, core::DesignSpace space,
             std::vector<sim::PvtCorner> corners, MeetsSpecFn meetsSpec,
             EvalEngineConfig config = {});

  /// Convenience: engine over a SizingProblem — CallbackBackend around
  /// problem.evaluate, the problem's space/corners, and an all-specs
  /// meetsSpec predicate.
  explicit EvalEngine(const core::SizingProblem& problem,
                      EvalEngineConfig config = {});

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  /// Evaluate one sizing on each corner of `cornerIdx` (one batch). The
  /// sizing is snapped onto the grid here, so the simulated point always
  /// matches the cache key (callers may pass raw or snapped values).
  /// Results come back in request order; cache probes and inserts, ledger
  /// records, and stats updates all happen on the calling thread in request
  /// order, so the outcome and the accounting are identical for any thread
  /// count. Duplicate (point, corner) requests inside a batch simulate once
  /// when caching is on. A request that exhausts its retries yields a failed
  /// EvalResult (ok == false, failure != kNone) in its slot — faults never
  /// throw through the batch and never enter any cache.
  std::vector<core::EvalResult> evalBatch(
      const std::vector<std::size_t>& cornerIdx, const linalg::Vector& sizes,
      pvt::BlockKind kind);

  /// Evaluate `points.size()` sizings on each corner of `cornerIdx` as one
  /// fused batch; slot `p * cornerIdx.size() + c` of the returned vector is
  /// point p on corner cornerIdx[c]. Misses from *all* points pack into
  /// consecutive simulator lanes, so per-point ragged tails (e.g. 9 corners
  /// on a 4-lane backend) stop wasting lanes once several points are in
  /// flight. Per-slot results are bitwise identical to the equivalent
  /// sequence of evalBatch calls (the backend batch contract is per-slot),
  /// and so is the accounting, with one documented exception: this is ONE
  /// batch, so a duplicate (snapped point, corner) key across points
  /// simulates once and the later slot accounts as cached — exactly the
  /// in-batch duplicate rule evalBatch already applies within a call.
  std::vector<core::EvalResult> evalPacked(
      const std::vector<linalg::Vector>& points,
      const std::vector<std::size_t>& cornerIdx, pvt::BlockKind kind);

  /// Single-request path (the LocalExplorer / SizingEnv per-step hot path):
  /// same semantics as a one-element evalBatch, but evaluates inline on the
  /// calling thread and reuses member scratch, so a steady-state cache hit
  /// performs no allocation beyond the returned result.
  core::EvalResult evalOne(std::size_t cornerIdx, const linalg::Vector& sizes,
                           pvt::BlockKind kind);

  /// Wrap the backend in a FaultInjector driven by `plan` (no-op when the
  /// plan injects nothing), keyed on `scope` — jobs that share a fault plan
  /// and scope see identical fault schedules. Must be called before the
  /// first request; throws std::logic_error otherwise and
  /// std::invalid_argument on a null plan.
  void injectFaults(std::shared_ptr<const sim::FaultPlan> plan,
                    std::string_view scope);

  /// Replace the retry policy. Like injectFaults, only before the first
  /// request (throws std::logic_error otherwise) — mid-run policy changes
  /// would break the bitwise-reproducibility contract.
  void setRetryPolicy(const RetryPolicy& retry) {
    if (stats_.requests != 0)
      throw std::logic_error(
          "EvalEngine::setRetryPolicy: must be configured before the first "
          "request");
    config_.retry = retry;
  }

  /// Accounting owned by the engine.
  const pvt::EdaLedger& ledger() const { return ledger_; }
  const EvalStats& stats() const { return stats_; }
  /// First retry-exhausted request, if any (deterministic request order).
  const FailureRecord& firstFailure() const { return firstFailure_; }
  /// Distinct (point, corner) results memoized so far.
  std::size_t cacheSize() const { return cache_.size(); }
  const EvalBackend& backend() const { return *backend_; }
  /// Owning handle to the backend (decorators wrap it; see setBackend).
  std::shared_ptr<const EvalBackend> backendPtr() const { return backend_; }
  /// Swap the backend for a decorator that is bitwise-equivalent by contract
  /// — the distributed chunk-offload shim wraps backendPtr() and routes
  /// batches to idle workers, falling back to the wrapped backend locally.
  /// The caller owns the equivalence claim; a decorator that changed results
  /// would break every determinism guarantee downstream. Throws
  /// std::invalid_argument on null.
  void setBackend(std::shared_ptr<const EvalBackend> backend);
  const std::vector<sim::PvtCorner>& corners() const { return corners_; }
  const EvalEngineConfig& config() const { return config_; }

  /// Zero the ledger and stats for a fresh run; the memo is kept (results
  /// are run-independent — backends are pure).
  void resetAccounting();
  /// Drop every memoized result.
  void clearCache() { cache_.clear(); }

  /// Attach a cross-job SharedEvalCache under the named scope (the circuit
  /// or problem name — jobs on the same circuit must agree on it). On a local
  /// memo miss the engine probes the shared cache; a shared hit costs zero
  /// EDA blocks and is tallied in EvalStats::sharedHits (the ledger block is
  /// flagged `cached`). Freshly simulated results are journaled and only
  /// enter the shared cache on publishShared() — the orch::Scheduler calls
  /// it at round barriers, in job order, which is what makes per-job shared
  /// hit/miss accounting independent of scheduler thread count.
  /// Must be called before the first request, on an engine with cacheEvals
  /// on (the local memo backs the journal); throws std::logic_error
  /// otherwise.
  void attachSharedCache(std::shared_ptr<SharedEvalCache> shared,
                         std::string_view scope);
  /// Whether a shared cache is attached.
  bool hasSharedCache() const { return shared_ != nullptr; }
  /// Flush results simulated since the last publish into the shared cache
  /// (no-op without one attached); returns the number of entries published.
  std::size_t publishShared();
  /// Distributed sibling of publishShared(): return the (key, result) pairs
  /// publishShared() would insert — same filtering, same order — clearing
  /// the journal without touching the attached cache. The coordinator of a
  /// multi-process run ships these to the master cache and applies them at
  /// the round barrier in job-index order, which is what keeps worker-count
  /// N bitwise identical to the in-process path.
  std::vector<std::pair<EvalKey, core::EvalResult>> drainPublishJournal();

  /// Serialize the engine's durable state — memo contents, ledger timeline,
  /// stats counters — into a checkpoint section. Cache entries are emitted
  /// in sorted key order so identical states produce identical bytes.
  void saveState(io::SectionWriter& w) const;
  /// Replace memo/ledger/stats with state written by saveState. The restored
  /// memo is what keeps a resumed run's cached/simulated accounting bitwise
  /// identical to the uninterrupted run's.
  void restoreState(io::SectionReader& r);

 private:
  std::shared_ptr<const EvalBackend> backend_;
  core::DesignSpace space_;
  std::vector<sim::PvtCorner> corners_;
  MeetsSpecFn meetsSpec_;
  EvalEngineConfig config_;
  common::ThreadPool pool_;
  EvalCache cache_;
  pvt::EdaLedger ledger_;
  EvalStats stats_;
  FailureRecord firstFailure_;
  /// Optional cross-job cache; nullptr for the common single-search case.
  std::shared_ptr<SharedEvalCache> shared_;
  std::size_t sharedScope_ = 0;
  /// Keys simulated since the last publishShared() (empty without shared_).
  std::vector<EvalKey> unpublished_;

  /// Snap `sizes` onto the grid into snapScratch_ and fill
  /// keyScratch_.indices with the grid indices (no allocation steady-state).
  void prepareKey(const linalg::Vector& sizes);

  /// Per-miss retry bookkeeping filled by runWithRetry.
  struct MissTrace {
    std::uint32_t retries = 0;  ///< extra attempts beyond the first
    std::uint32_t backoff = 0;  ///< backoff units charged for those retries
    double seconds = 0.0;       ///< backend wall time over all attempts
  };

  /// One queued simulation: where its result lands (flat slot) and the full
  /// request identity. `sizes`/`indices` point into per-call storage
  /// (snapScratch_/keyScratch_ or packSnaps_/packKeys_) that stays frozen
  /// through the parallel section.
  struct MissRef {
    std::size_t slot = 0;  ///< index into the flat result array
    const linalg::Vector* sizes = nullptr;
    const std::vector<std::size_t>* indices = nullptr;
    std::size_t cornerIndex = 0;
  };

  /// Run one queued miss through the retry loop: classify each attempt
  /// (result fault, deadline, finiteness), retry transient faults with
  /// deterministic backoff, and return either a clean result or a typed
  /// failed one after exhaustion. Thread-safe: reads only state that is
  /// frozen during a batch's parallel section (the per-call sizing/index
  /// storage, config, backend) and writes only through `trace`.
  core::EvalResult runWithRetry(const MissRef& ref, MissTrace& trace) const;

  /// Corner-batch counterpart of runWithRetry: drive the miss chunk
  /// missRefs_[begin .. begin+count) through a lockstep retry loop — one
  /// backend evaluateBatch call per attempt round over the lanes still
  /// faulted — writing results and missTrace_ entries for each lane.
  /// Per-lane classification, retry counts, and backoff charges are exactly
  /// what runWithRetry produces for that lane alone (the fault identity
  /// tuple (indices, corner, attempt) is per lane, so a decorator's schedule
  /// cannot tell the paths apart); backend wall time, which is
  /// measurement-only, is charged once per backend call to the chunk's first
  /// lane. Thread-safe under the same rules as runWithRetry; chunks write
  /// disjoint result/trace slots.
  void runBatchWithRetry(std::vector<core::EvalResult>& results,
                         std::size_t begin, std::size_t count);

  /// Fan the queued misses (missRefs_) out across the pool: full chunks of
  /// the backend's batch width, except that a trailing chunk of exactly one
  /// lane runs the scalar path (identical bits at one lane's cost instead of
  /// a whole idle-lane batch). Fills missTrace_, charges backendSeconds, and
  /// samples the simulator phase counters.
  void dispatchMisses(std::vector<core::EvalResult>& results);

  /// Fold the process-wide sim phase counters' growth since the last sample
  /// into stats_ (all-zero no-op unless sim profiling is on).
  void harvestSimPhases();

  /// Per-request accounting shared by evalBatch's merge loop and evalOne:
  /// updates stats, firstFailure_, and (when enabled) the ledger.
  void accountRequest(std::size_t cornerIndex, pvt::BlockKind kind,
                      const core::EvalResult& result, bool cached, bool shared,
                      bool isMiss, const MissTrace& trace);

  // Request scratch, reused across calls.
  linalg::Vector snapScratch_;          ///< snapped sizing (fed to backends)
  EvalKey keyScratch_;                  ///< probe key (indices reused)
  std::vector<MissRef> missRefs_;       ///< queued simulations, slot order
  std::vector<MissTrace> missTrace_;    ///< per-miss retry/timing bookkeeping
  std::vector<char> hitFlags_;          ///< request served from the memo
  std::vector<char> sharedFlags_;       ///< ... specifically the shared cache
  std::vector<std::size_t> dupOf_;      ///< in-batch duplicate -> first miss
  std::vector<linalg::Vector> packSnaps_;  ///< evalPacked per-point sizings
  std::vector<EvalKey> packKeys_;          ///< evalPacked per-point indices
  sim::SimPhaseTotals phaseBase_;  ///< phase counters at the last harvest
};

}  // namespace trdse::eval
