// The unified evaluation engine — Spice(X) as a batched, schedulable,
// memoizing service.
//
// Every consumer of circuit evaluations (PvtSearch, LocalExplorer, the RL
// SizingEnv, sessions, examples) routes its (sizing, corner) requests through
// one engine per search, which:
//   - dedups and memoizes requests through an EvalCache keyed on (snapped
//     grid indices, corner id) — re-simulating an already-paid-for point
//     costs zero EDA blocks;
//   - fans real simulations out across a common::ThreadPool and merges
//     results in request order, so outcomes are identical for any thread
//     count;
//   - owns the EdaLedger: each logical request records one block, with cache
//     hits flagged `cached` (zero EDA time, tallied separately), so the
//     (corner, kind, meetsSpec) block sequence — and therefore any seeded
//     search trajectory — is bitwise identical with caching on or off.
//
// Timing (EvalStats::backendSeconds) is measurement-only: it never feeds back
// into scheduling, so it is excluded from the determinism guarantees.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/problem.hpp"
#include "core/value.hpp"
#include "eval/backend.hpp"
#include "eval/eval_cache.hpp"
#include "eval/shared_cache.hpp"
#include "pvt/ledger.hpp"

namespace trdse::io {
class SectionReader;
class SectionWriter;
}  // namespace trdse::io

namespace trdse::eval {

/// Engine knobs.
struct EvalEngineConfig {
  /// Memoize results on (snapped grid indices, corner id). Cache hits cost
  /// zero EDA blocks; seeded search outcomes are bitwise identical on/off.
  bool cacheEvals = true;
  /// Worker threads for fanning a batch's real simulations out:
  /// 1 = inline/serial (default), 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Record one EdaBlock per logical request (and evaluate meetsSpec for
  /// it). Long-running consumers that never render a timeline — the RL
  /// SizingEnv — turn this off so the ledger does not grow unbounded;
  /// EvalStats counters are kept either way.
  bool recordLedger = true;
};

/// Aggregate engine counters. `requests` is the logical evaluation count the
/// search budget is charged against; `simulated` is what actually hit the
/// backend (EDA blocks consumed); `cacheHits` is the blocks saved.
struct EvalStats {
  std::size_t requests = 0;    ///< logical evaluations (simulated + hits)
  std::size_t simulated = 0;   ///< real backend invocations (EDA blocks)
  std::size_t cacheHits = 0;   ///< requests served from this engine's memo
  std::size_t sharedHits = 0;  ///< requests served from the cross-job cache
  double backendSeconds = 0.0; ///< wall time summed over backend calls

  std::size_t blocksSaved() const { return cacheHits + sharedHits; }
  double hitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(cacheHits + sharedHits) /
                               static_cast<double>(requests);
  }
};

/// Whether an EvalResult meets every spec — used for ledger bookkeeping.
using MeetsSpecFn = std::function<bool(const core::EvalResult&)>;

/// The standard ledger predicate: simulation converged and every spec of
/// `value` holds. Shared by every engine built around a problem's specs.
MeetsSpecFn makeMeetsSpec(core::ValueFunction value);

/// Batched, memoizing, thread-parallel evaluation front-end over an
/// EvalBackend. Not thread-safe itself: one engine per search/session, called
/// from the coordinating thread (the internal pool carries the parallelism).
class EvalEngine {
 public:
  /// @param backend    the simulator service (shared so sessions can reuse it)
  /// @param space      design space used to derive snapped cache keys
  /// @param corners    corner list requests index into
  /// @param meetsSpec  ledger predicate (ok + all specs); may be empty, then
  ///                   every block is recorded as not meeting spec
  EvalEngine(std::shared_ptr<const EvalBackend> backend, core::DesignSpace space,
             std::vector<sim::PvtCorner> corners, MeetsSpecFn meetsSpec,
             EvalEngineConfig config = {});

  /// Convenience: engine over a SizingProblem — CallbackBackend around
  /// problem.evaluate, the problem's space/corners, and an all-specs
  /// meetsSpec predicate.
  explicit EvalEngine(const core::SizingProblem& problem,
                      EvalEngineConfig config = {});

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  /// Evaluate one sizing on each corner of `cornerIdx` (one batch). The
  /// sizing is snapped onto the grid here, so the simulated point always
  /// matches the cache key (callers may pass raw or snapped values).
  /// Results come back in request order; cache probes and inserts, ledger
  /// records, and stats updates all happen on the calling thread in request
  /// order, so the outcome and the accounting are identical for any thread
  /// count. Duplicate (point, corner) requests inside a batch simulate once
  /// when caching is on.
  std::vector<core::EvalResult> evalBatch(
      const std::vector<std::size_t>& cornerIdx, const linalg::Vector& sizes,
      pvt::BlockKind kind);

  /// Single-request path (the LocalExplorer / SizingEnv per-step hot path):
  /// same semantics as a one-element evalBatch, but evaluates inline on the
  /// calling thread and reuses member scratch, so a steady-state cache hit
  /// performs no allocation beyond the returned result.
  core::EvalResult evalOne(std::size_t cornerIdx, const linalg::Vector& sizes,
                           pvt::BlockKind kind);

  /// Accounting owned by the engine.
  const pvt::EdaLedger& ledger() const { return ledger_; }
  const EvalStats& stats() const { return stats_; }
  /// Distinct (point, corner) results memoized so far.
  std::size_t cacheSize() const { return cache_.size(); }
  const EvalBackend& backend() const { return *backend_; }
  const std::vector<sim::PvtCorner>& corners() const { return corners_; }
  const EvalEngineConfig& config() const { return config_; }

  /// Zero the ledger and stats for a fresh run; the memo is kept (results
  /// are run-independent — backends are pure).
  void resetAccounting();
  /// Drop every memoized result.
  void clearCache() { cache_.clear(); }

  /// Attach a cross-job SharedEvalCache under the named scope (the circuit
  /// or problem name — jobs on the same circuit must agree on it). On a local
  /// memo miss the engine probes the shared cache; a shared hit costs zero
  /// EDA blocks and is tallied in EvalStats::sharedHits (the ledger block is
  /// flagged `cached`). Freshly simulated results are journaled and only
  /// enter the shared cache on publishShared() — the orch::Scheduler calls
  /// it at round barriers, in job order, which is what makes per-job shared
  /// hit/miss accounting independent of scheduler thread count.
  /// Must be called before the first request, on an engine with cacheEvals
  /// on (the local memo backs the journal); throws std::logic_error
  /// otherwise.
  void attachSharedCache(std::shared_ptr<SharedEvalCache> shared,
                         std::string_view scope);
  /// Whether a shared cache is attached.
  bool hasSharedCache() const { return shared_ != nullptr; }
  /// Flush results simulated since the last publish into the shared cache
  /// (no-op without one attached); returns the number of entries published.
  std::size_t publishShared();

  /// Serialize the engine's durable state — memo contents, ledger timeline,
  /// stats counters — into a checkpoint section. Cache entries are emitted
  /// in sorted key order so identical states produce identical bytes.
  void saveState(io::SectionWriter& w) const;
  /// Replace memo/ledger/stats with state written by saveState. The restored
  /// memo is what keeps a resumed run's cached/simulated accounting bitwise
  /// identical to the uninterrupted run's.
  void restoreState(io::SectionReader& r);

 private:
  std::shared_ptr<const EvalBackend> backend_;
  core::DesignSpace space_;
  std::vector<sim::PvtCorner> corners_;
  MeetsSpecFn meetsSpec_;
  EvalEngineConfig config_;
  common::ThreadPool pool_;
  EvalCache cache_;
  pvt::EdaLedger ledger_;
  EvalStats stats_;
  /// Optional cross-job cache; nullptr for the common single-search case.
  std::shared_ptr<SharedEvalCache> shared_;
  std::size_t sharedScope_ = 0;
  /// Keys simulated since the last publishShared() (empty without shared_).
  std::vector<EvalKey> unpublished_;

  /// Snap `sizes` onto the grid into snapScratch_ and fill
  /// keyScratch_.indices with the grid indices (no allocation steady-state).
  void prepareKey(const linalg::Vector& sizes);

  // Request scratch, reused across calls.
  linalg::Vector snapScratch_;          ///< snapped sizing (fed to backends)
  EvalKey keyScratch_;                  ///< probe key (indices reused)
  std::vector<std::size_t> missSlots_;  ///< request indices that simulate
  std::vector<double> missSeconds_;     ///< per-miss backend wall time
  std::vector<char> hitFlags_;          ///< request served from the memo
  std::vector<char> sharedFlags_;       ///< ... specifically the shared cache
  std::vector<std::size_t> dupOf_;      ///< in-batch duplicate -> first miss
};

}  // namespace trdse::eval
