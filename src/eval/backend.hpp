// Pluggable circuit-evaluation backends — the paper's Spice(X) behind an
// interface.
//
// An EvalBackend is a pure, thread-safe function of (sizes, corner); the
// EvalEngine schedules batched requests onto it, memoizes results, and owns
// the EDA-block accounting. CallbackBackend preserves the existing designer
// contract (any CornerEvalFn); CircuitBackend (circuit_backend.hpp) is fed
// declaratively by circuits::Registry.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "core/problem.hpp"
#include "sim/process.hpp"

namespace trdse::eval {

/// Abstract evaluation service. Implementations must be deterministic pure
/// functions of (sizes, corner) — memoization assumes re-evaluating a snapped
/// grid point on the same corner reproduces the result bitwise — and
/// thread-safe, since the engine fans batches out across a worker pool.
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  /// Stable label for reports and per-backend timing statistics.
  virtual std::string_view name() const = 0;

  /// Evaluate one sizing under one PVT condition (one EDA block).
  virtual core::EvalResult evaluate(const linalg::Vector& sizes,
                                    const sim::PvtCorner& corner) const = 0;
};

/// Wraps any CornerEvalFn — the adapter that keeps the existing designer
/// contract (SizingProblem::evaluate, LocalExplorer's EvalFn) working
/// unchanged behind the engine.
class CallbackBackend final : public EvalBackend {
 public:
  explicit CallbackBackend(core::CornerEvalFn fn,
                           std::string label = "callback")
      : fn_(std::move(fn)), label_(std::move(label)) {}

  std::string_view name() const override { return label_; }

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const override {
    return fn_(sizes, corner);
  }

 private:
  core::CornerEvalFn fn_;
  std::string label_;
};

}  // namespace trdse::eval
