// Pluggable circuit-evaluation backends — the paper's Spice(X) behind an
// interface.
//
// An EvalBackend is a pure, thread-safe function of (sizes, corner); the
// EvalEngine schedules batched requests onto it, memoizes results, and owns
// the EDA-block accounting. CallbackBackend preserves the existing designer
// contract (any CornerEvalFn); CircuitBackend (circuit_backend.hpp) is fed
// declaratively by circuits::Registry.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "sim/process.hpp"

namespace trdse::eval {

/// Request identity the EvalEngine hands down with every backend call — the
/// cache-key tuple plus the retry attempt counter. Fault-aware decorators
/// (eval::FaultInjector) key their deterministic schedules on it; plain
/// backends ignore it. The indices pointer stays valid for the duration of
/// the call only.
struct EvalContext {
  const std::vector<std::size_t>* indices = nullptr;  ///< snapped grid indices
  std::size_t cornerIndex = 0;  ///< position in the engine's corner list
  std::size_t attempt = 0;      ///< 0-based retry attempt of this request
};

/// Abstract evaluation service. Implementations must be deterministic pure
/// functions of (sizes, corner) — memoization assumes re-evaluating a snapped
/// grid point on the same corner reproduces the result bitwise — and
/// thread-safe, since the engine fans batches out across a worker pool.
/// (Fault decorators are deterministic in (sizes, corner, context) instead,
/// which keeps every fault scenario bitwise reproducible too.)
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  /// Stable label for reports and per-backend timing statistics.
  virtual std::string_view name() const = 0;

  /// Evaluate one sizing under one PVT condition (one EDA block).
  virtual core::EvalResult evaluate(const linalg::Vector& sizes,
                                    const sim::PvtCorner& corner) const = 0;

  /// Context-aware entry point the EvalEngine calls. The default forwards to
  /// the plain overload; only decorators that need the request identity
  /// (fault injection) override it.
  virtual core::EvalResult evaluate(const linalg::Vector& sizes,
                                    const sim::PvtCorner& corner,
                                    const EvalContext& context) const {
    (void)context;
    return evaluate(sizes, corner);
  }
};

/// Wraps any CornerEvalFn — the adapter that keeps the existing designer
/// contract (SizingProblem::evaluate, LocalExplorer's EvalFn) working
/// unchanged behind the engine.
class CallbackBackend final : public EvalBackend {
 public:
  explicit CallbackBackend(core::CornerEvalFn fn,
                           std::string label = "callback")
      : fn_(std::move(fn)), label_(std::move(label)) {}

  std::string_view name() const override { return label_; }

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const override {
    return fn_(sizes, corner);
  }

 private:
  core::CornerEvalFn fn_;
  std::string label_;
};

}  // namespace trdse::eval
