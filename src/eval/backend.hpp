// Pluggable circuit-evaluation backends — the paper's Spice(X) behind an
// interface.
//
// An EvalBackend is a pure, thread-safe function of (sizes, corner); the
// EvalEngine schedules batched requests onto it, memoizes results, and owns
// the EDA-block accounting. CallbackBackend preserves the existing designer
// contract (any CornerEvalFn); CircuitBackend (circuit_backend.hpp) is fed
// declaratively by circuits::Registry.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "sim/mosfet.hpp"  // kSimLanes, the native batch width of the simulator
#include "sim/process.hpp"

namespace trdse::eval {

/// Request identity the EvalEngine hands down with every backend call — the
/// cache-key tuple plus the retry attempt counter. Fault-aware decorators
/// (eval::FaultInjector) key their deterministic schedules on it; plain
/// backends ignore it. The indices pointer stays valid for the duration of
/// the call only.
struct EvalContext {
  const std::vector<std::size_t>* indices = nullptr;  ///< snapped grid indices
  std::size_t cornerIndex = 0;  ///< position in the engine's corner list
  std::size_t attempt = 0;      ///< 0-based retry attempt of this request
};

/// Abstract evaluation service. Implementations must be deterministic pure
/// functions of (sizes, corner) — memoization assumes re-evaluating a snapped
/// grid point on the same corner reproduces the result bitwise — and
/// thread-safe, since the engine fans batches out across a worker pool.
/// (Fault decorators are deterministic in (sizes, corner, context) instead,
/// which keeps every fault scenario bitwise reproducible too.)
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  /// Stable label for reports and per-backend timing statistics.
  virtual std::string_view name() const = 0;

  /// Evaluate one sizing under one PVT condition (one EDA block).
  virtual core::EvalResult evaluate(const linalg::Vector& sizes,
                                    const sim::PvtCorner& corner) const = 0;

  /// Context-aware entry point the EvalEngine calls. The default forwards to
  /// the plain overload; only decorators that need the request identity
  /// (fault injection) override it.
  virtual core::EvalResult evaluate(const linalg::Vector& sizes,
                                    const sim::PvtCorner& corner,
                                    const EvalContext& context) const {
    (void)context;
    return evaluate(sizes, corner);
  }

  // ---- Corner-batch capability -------------------------------------------
  //
  // A backend that can fuse several (sizing, corner) operating points into
  // one simulator pass (the lane-blocked engines in sim/op_batch.hpp)
  // advertises a batchWidth() > 1; the EvalEngine then submits its cache
  // misses as corner-batches of at most that width instead of one request
  // per backend call. The contract is strict bitwise equivalence: slot i of
  // evaluateBatch must equal evaluate(sizes, corners[i], contexts[i]) bit
  // for bit, so routing through either path changes no search outcome,
  // ledger, or statistic. Plain backends inherit the defaults and behave
  // exactly as before.

  /// Operating points one evaluateBatch call can fuse (1 = scalar backend).
  virtual std::size_t batchWidth() const { return 1; }

  /// Evaluate `count` (sizing, corner) operating points in a single call;
  /// results land in `results[0..count)`. Slot i's sizing is `*sizes[i]` —
  /// slots may mix sizings, which lets the engine pack lanes across
  /// requests. `contexts[i]` carries request i's identity (for fault
  /// decorators). The default loops over the scalar context-aware entry
  /// point, so overriding batchWidth() alone is never observable.
  virtual void evaluateBatch(const linalg::Vector* const* sizes,
                             const sim::PvtCorner* corners,
                             const EvalContext* contexts,
                             core::EvalResult* results,
                             std::size_t count) const {
    for (std::size_t i = 0; i < count; ++i)
      results[i] = evaluate(*sizes[i], corners[i], contexts[i]);
  }
};

/// Wraps any CornerEvalFn — the adapter that keeps the existing designer
/// contract (SizingProblem::evaluate, LocalExplorer's EvalFn) working
/// unchanged behind the engine.
class CallbackBackend final : public EvalBackend {
 public:
  /// `batchFn`, when supplied, is the fused corner-batch path (must be
  /// bitwise identical to `fn` per slot — see core::CornerBatchEvalFn);
  /// `batchWidth` is the lane width the engine should chunk requests to.
  explicit CallbackBackend(core::CornerEvalFn fn,
                           std::string label = "callback",
                           core::CornerBatchEvalFn batchFn = {},
                           std::size_t batchWidth = sim::kSimLanes)
      : fn_(std::move(fn)),
        batchFn_(std::move(batchFn)),
        width_(batchWidth),
        label_(std::move(label)) {}

  std::string_view name() const override { return label_; }

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const override {
    return fn_(sizes, corner);
  }

  std::size_t batchWidth() const override { return batchFn_ ? width_ : 1; }

  void evaluateBatch(const linalg::Vector* const* sizes,
                     const sim::PvtCorner* corners,
                     const EvalContext* contexts, core::EvalResult* results,
                     std::size_t count) const override {
    if (batchFn_) {
      (void)contexts;  // callbacks carry no request identity
      batchFn_(sizes, corners, results, count);
    } else {
      EvalBackend::evaluateBatch(sizes, corners, contexts, results, count);
    }
  }

 private:
  core::CornerEvalFn fn_;
  core::CornerBatchEvalFn batchFn_;
  std::size_t width_ = 1;
  std::string label_;
};

}  // namespace trdse::eval
