// Fault-injecting EvalBackend decorator.
//
// Wraps any backend and consults a sim::FaultPlan on every context-aware
// call: when the plan schedules a fault for (scope, indices, corner,
// attempt), the injector synthesizes that failure instead of (or on top of)
// the inner result. Because the plan is a pure hash of the identity tuple,
// a faulty pipeline is exactly as reproducible as a clean one — the whole
// retry/quarantine machinery can be tested bitwise.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "eval/backend.hpp"
#include "sim/fault.hpp"

namespace trdse::eval {

/// Decorator injecting deterministic faults around an inner backend.
///
/// Behavior per scheduled class:
///   * kTimeout        — optionally stalls for the plan's
///                       timeoutStallSeconds, then reports a timeout failure
///                       without invoking the inner backend (a real timeout
///                       yields no usable output either).
///   * kNonConvergence — reports a transient solver failure, inner backend
///                       not invoked.
///   * kNonFinite      — invokes the inner backend, then corrupts one
///                       deterministically-chosen measurement to NaN; the
///                       engine's finiteness guard must catch it (which is
///                       how that guard gets exercised end to end).
///   * kNone           — forwards untouched.
class FaultInjector final : public EvalBackend {
 public:
  /// @param inner  backend to decorate (must be non-null).
  /// @param plan   deterministic fault schedule (must be non-null).
  /// @param scope  stable scope label (circuit/problem name) keying the plan.
  FaultInjector(std::shared_ptr<const EvalBackend> inner,
                std::shared_ptr<const sim::FaultPlan> plan,
                std::string_view scope);

  std::string_view name() const override { return label_; }

  /// Keyless calls bypass injection: without the identity tuple a fault draw
  /// could not be deterministic, and the engine always supplies the context.
  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const override;

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner,
                            const EvalContext& context) const override;

  /// The decorator is transparent to batching: the inner backend's width is
  /// the batch width, and the batch override draws each lane's fault from
  /// the same (scope, indices, corner, attempt) tuple as the scalar path —
  /// a fault scheduled for a request lands in the same slot whether the
  /// engine dispatches scalar requests or corner-batches.
  std::size_t batchWidth() const override { return inner_->batchWidth(); }

  void evaluateBatch(const linalg::Vector* const* sizes,
                     const sim::PvtCorner* corners,
                     const EvalContext* contexts, core::EvalResult* results,
                     std::size_t count) const override;

 private:
  std::shared_ptr<const EvalBackend> inner_;
  std::shared_ptr<const sim::FaultPlan> plan_;
  std::uint64_t scopeHash_ = 0;
  std::string label_;
};

}  // namespace trdse::eval
