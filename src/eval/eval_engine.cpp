#include "eval/eval_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "io/state_io.hpp"

namespace trdse::eval {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

MeetsSpecFn makeMeetsSpec(core::ValueFunction value) {
  return [value = std::move(value)](const core::EvalResult& r) {
    return r.ok && value.satisfied(r.measurements);
  };
}

EvalEngine::EvalEngine(std::shared_ptr<const EvalBackend> backend,
                       core::DesignSpace space,
                       std::vector<sim::PvtCorner> corners,
                       MeetsSpecFn meetsSpec, EvalEngineConfig config)
    : backend_(std::move(backend)),
      space_(std::move(space)),
      corners_(std::move(corners)),
      meetsSpec_(std::move(meetsSpec)),
      config_(config),
      pool_(config.threads) {
  assert(backend_ != nullptr);
  assert(!corners_.empty());
}

EvalEngine::EvalEngine(const core::SizingProblem& problem,
                       EvalEngineConfig config)
    : EvalEngine(std::make_shared<CallbackBackend>(
                     problem.evaluate, "problem:" + problem.name),
                 problem.space, problem.corners,
                 makeMeetsSpec(
                     core::ValueFunction(problem.measurementNames,
                                         problem.specs)),
                 config) {}

void EvalEngine::resetAccounting() {
  ledger_ = pvt::EdaLedger{};
  stats_ = EvalStats{};
}

void EvalEngine::attachSharedCache(std::shared_ptr<SharedEvalCache> shared,
                                   std::string_view scope) {
  if (!config_.cacheEvals)
    throw std::logic_error(
        "EvalEngine::attachSharedCache: requires cacheEvals (the local memo "
        "backs the publish journal)");
  if (stats_.requests != 0)
    throw std::logic_error(
        "EvalEngine::attachSharedCache: must be attached before the first "
        "request");
  shared_ = std::move(shared);
  sharedScope_ = shared_ ? shared_->scopeId(scope) : 0;
  unpublished_.clear();
}

std::size_t EvalEngine::publishShared() {
  if (shared_ == nullptr) return 0;
  std::size_t published = 0;
  for (const EvalKey& key : unpublished_) {
    if (const core::EvalResult* r = cache_.find(key)) {
      shared_->insert(sharedScope_, key, *r);
      ++published;
    }
  }
  unpublished_.clear();
  return published;
}

void EvalEngine::saveState(io::SectionWriter& w) const {
  // Memo, sorted by (corner, grid indices) — unordered_map iteration order
  // is not stable, and deterministic bytes make save→load→save idempotent.
  std::vector<const std::pair<const EvalKey, core::EvalResult>*> entries;
  entries.reserve(cache_.size());
  for (const auto& kv : cache_.entries()) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
    if (a->first.cornerIndex != b->first.cornerIndex)
      return a->first.cornerIndex < b->first.cornerIndex;
    return a->first.indices < b->first.indices;
  });
  w.u64(entries.size());
  for (const auto* kv : entries) {
    w.indexVec(kv->first.indices);
    w.u64(kv->first.cornerIndex);
    io::writeEvalResult(w, kv->second);
  }
  io::writeLedger(w, ledger_);
  w.u64(stats_.requests);
  w.u64(stats_.simulated);
  w.u64(stats_.cacheHits);
  w.u64(stats_.sharedHits);
  w.f64(stats_.backendSeconds);
}

void EvalEngine::restoreState(io::SectionReader& r) {
  cache_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    EvalKey key;
    key.indices = r.indexVec();
    key.cornerIndex = r.u64();
    if (key.indices.size() != space_.dim())
      r.fail("cache key dimensionality " + std::to_string(key.indices.size()) +
             " does not match the design space (" +
             std::to_string(space_.dim()) + ")");
    if (key.cornerIndex >= corners_.size())
      r.fail("cache key corner index " + std::to_string(key.cornerIndex) +
             " out of range (" + std::to_string(corners_.size()) +
             " corners)");
    cache_.insert(std::move(key), io::readEvalResult(r));
  }
  io::readLedger(r, ledger_);
  stats_.requests = r.u64();
  stats_.simulated = r.u64();
  stats_.cacheHits = r.u64();
  stats_.sharedHits = r.u64();
  stats_.backendSeconds = r.f64();
  // The publish journal is deliberately not persisted: results simulated
  // before a snapshot re-enter the shared cache only by being re-requested,
  // never as stale cross-run publishes.
  unpublished_.clear();
}

void EvalEngine::prepareKey(const linalg::Vector& sizes) {
  const std::size_t dim = space_.dim();
  assert(sizes.size() == dim);
  snapScratch_.resize(dim);
  keyScratch_.indices.resize(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    const std::size_t idx = space_.nearestIndex(d, sizes[d]);
    keyScratch_.indices[d] = idx;
    snapScratch_[d] = space_.gridValue(d, idx);
  }
}

std::vector<core::EvalResult> EvalEngine::evalBatch(
    const std::vector<std::size_t>& cornerIdx, const linalg::Vector& sizes,
    pvt::BlockKind kind) {
  const std::size_t n = cornerIdx.size();
  std::vector<core::EvalResult> results(n);
  if (n == 0) return results;
  // Snap here so the simulated point always matches the cache key, whatever
  // the caller passed.
  prepareKey(sizes);

  // ---- Probe the memos (and collapse in-batch duplicates) serially.
  missSlots_.clear();
  hitFlags_.assign(n, 0);
  sharedFlags_.assign(n, 0);
  dupOf_.assign(n, kNone);
  if (config_.cacheEvals) {
    for (std::size_t i = 0; i < n; ++i) {
      keyScratch_.cornerIndex = cornerIdx[i];
      if (const core::EvalResult* hit = cache_.find(keyScratch_)) {
        results[i] = *hit;
        hitFlags_[i] = 1;
        continue;
      }
      // Local miss: the cross-job cache may already hold the result. Copy a
      // shared hit into the local memo, so a repeat of the key inside this
      // batch (or later) becomes a plain local hit.
      if (shared_ != nullptr &&
          shared_->find(sharedScope_, keyScratch_, results[i])) {
        cache_.insert({keyScratch_.indices, cornerIdx[i]}, results[i]);
        hitFlags_[i] = 1;
        sharedFlags_[i] = 1;
        continue;
      }
      // A duplicate key within the batch can only repeat an earlier *miss*
      // (had the key been cached, both requests would have hit).
      for (const std::size_t j : missSlots_) {
        if (cornerIdx[j] == cornerIdx[i]) {
          dupOf_[i] = j;
          break;
        }
      }
      if (dupOf_[i] == kNone) missSlots_.push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) missSlots_.push_back(i);
  }

  // ---- Fan the real simulations out; results land in per-request slots.
  missSeconds_.assign(missSlots_.size(), 0.0);
  pool_.parallelFor(missSlots_.size(), [&](std::size_t m) {
    const std::size_t i = missSlots_[m];
    const auto t0 = std::chrono::steady_clock::now();
    results[i] = backend_->evaluate(snapScratch_, corners_[cornerIdx[i]]);
    missSeconds_[m] = secondsSince(t0);
  });

  // ---- Merge and account after the join, in request order: cache inserts,
  // ledger blocks, and counters are then identical for any thread count.
  for (const double s : missSeconds_) stats_.backendSeconds += s;
  for (std::size_t i = 0; i < n; ++i) {
    if (dupOf_[i] != kNone) results[i] = results[dupOf_[i]];
    const bool cached = hitFlags_[i] != 0 || dupOf_[i] != kNone;
    if (config_.cacheEvals && !cached) {
      cache_.insert({keyScratch_.indices, cornerIdx[i]}, results[i]);
      if (shared_ != nullptr)
        unpublished_.push_back({keyScratch_.indices, cornerIdx[i]});
    }
    ++stats_.requests;
    if (sharedFlags_[i] != 0) {
      ++stats_.sharedHits;
    } else if (cached) {
      ++stats_.cacheHits;
    } else {
      ++stats_.simulated;
    }
    if (config_.recordLedger) {
      const bool meets = meetsSpec_ ? meetsSpec_(results[i]) : false;
      ledger_.record(cornerIdx[i], kind, meets, cached);
    }
  }
  return results;
}

core::EvalResult EvalEngine::evalOne(std::size_t cornerIdx,
                                     const linalg::Vector& sizes,
                                     pvt::BlockKind kind) {
  prepareKey(sizes);
  keyScratch_.cornerIndex = cornerIdx;
  if (config_.cacheEvals) {
    if (const core::EvalResult* hit = cache_.find(keyScratch_)) {
      ++stats_.requests;
      ++stats_.cacheHits;
      if (config_.recordLedger)
        ledger_.record(cornerIdx, kind, meetsSpec_ ? meetsSpec_(*hit) : false,
                       /*cached=*/true);
      return *hit;
    }
    if (shared_ != nullptr) {
      core::EvalResult hit;
      if (shared_->find(sharedScope_, keyScratch_, hit)) {
        cache_.insert({keyScratch_.indices, cornerIdx}, hit);
        ++stats_.requests;
        ++stats_.sharedHits;
        if (config_.recordLedger)
          ledger_.record(cornerIdx, kind, meetsSpec_ ? meetsSpec_(hit) : false,
                         /*cached=*/true);
        return hit;
      }
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  core::EvalResult result = backend_->evaluate(snapScratch_, corners_[cornerIdx]);
  stats_.backendSeconds += secondsSince(t0);
  if (config_.cacheEvals) {
    cache_.insert({keyScratch_.indices, cornerIdx}, result);
    if (shared_ != nullptr)
      unpublished_.push_back({keyScratch_.indices, cornerIdx});
  }
  ++stats_.requests;
  ++stats_.simulated;
  if (config_.recordLedger)
    ledger_.record(cornerIdx, kind, meetsSpec_ ? meetsSpec_(result) : false,
                   /*cached=*/false);
  return result;
}

}  // namespace trdse::eval
