#include "eval/eval_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "eval/fault_injector.hpp"
#include "io/state_io.hpp"

namespace trdse::eval {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool allFinite(const linalg::Vector& v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}
}  // namespace

MeetsSpecFn makeMeetsSpec(core::ValueFunction value) {
  return [value = std::move(value)](const core::EvalResult& r) {
    return r.ok && value.satisfied(r.measurements);
  };
}

EvalEngine::EvalEngine(std::shared_ptr<const EvalBackend> backend,
                       core::DesignSpace space,
                       std::vector<sim::PvtCorner> corners,
                       MeetsSpecFn meetsSpec, EvalEngineConfig config)
    : backend_(std::move(backend)),
      space_(std::move(space)),
      corners_(std::move(corners)),
      meetsSpec_(std::move(meetsSpec)),
      config_(config),
      pool_(config.threads) {
  assert(backend_ != nullptr);
  assert(!corners_.empty());
  // Baseline the process-wide phase counters so this engine's stats only
  // ever accumulate growth that happened during its own dispatches.
  phaseBase_ = sim::simPhaseTotals();
}

EvalEngine::EvalEngine(const core::SizingProblem& problem,
                       EvalEngineConfig config)
    : EvalEngine(std::make_shared<CallbackBackend>(
                     problem.evaluate, "problem:" + problem.name,
                     problem.evaluateBatch),
                 problem.space, problem.corners,
                 makeMeetsSpec(
                     core::ValueFunction(problem.measurementNames,
                                         problem.specs)),
                 config) {}

void EvalEngine::resetAccounting() {
  ledger_ = pvt::EdaLedger{};
  stats_ = EvalStats{};
  firstFailure_ = FailureRecord{};
  phaseBase_ = sim::simPhaseTotals();
}

void EvalEngine::injectFaults(std::shared_ptr<const sim::FaultPlan> plan,
                              std::string_view scope) {
  if (!plan)
    throw std::invalid_argument("EvalEngine::injectFaults: plan is null");
  if (stats_.requests != 0)
    throw std::logic_error(
        "EvalEngine::injectFaults: must be configured before the first "
        "request");
  // A plan with all-zero rates never injects; skip the wrapper so clean
  // configurations run the exact pre-fault code path.
  if (!plan->enabled()) return;
  backend_ = std::make_shared<FaultInjector>(backend_, std::move(plan), scope);
}

void EvalEngine::attachSharedCache(std::shared_ptr<SharedEvalCache> shared,
                                   std::string_view scope) {
  if (!config_.cacheEvals)
    throw std::logic_error(
        "EvalEngine::attachSharedCache: requires cacheEvals (the local memo "
        "backs the publish journal)");
  if (stats_.requests != 0)
    throw std::logic_error(
        "EvalEngine::attachSharedCache: must be attached before the first "
        "request");
  shared_ = std::move(shared);
  sharedScope_ = shared_ ? shared_->scopeId(scope) : 0;
  unpublished_.clear();
}

std::size_t EvalEngine::publishShared() {
  if (shared_ == nullptr) return 0;
  std::size_t published = 0;
  for (const EvalKey& key : unpublished_) {
    if (const core::EvalResult* r = cache_.find(key)) {
      shared_->insert(sharedScope_, key, *r);
      ++published;
    }
  }
  unpublished_.clear();
  return published;
}

std::vector<std::pair<EvalKey, core::EvalResult>>
EvalEngine::drainPublishJournal() {
  std::vector<std::pair<EvalKey, core::EvalResult>> out;
  if (shared_ == nullptr) return out;
  out.reserve(unpublished_.size());
  // Mirror publishShared() exactly: only keys still present in the local
  // memo ship (an entry could in principle have been evicted), in journal
  // order, so the coordinator-side inserts reproduce publishShared()'s
  // insert sequence and count bitwise.
  for (const EvalKey& key : unpublished_) {
    if (const core::EvalResult* r = cache_.find(key)) out.emplace_back(key, *r);
  }
  unpublished_.clear();
  return out;
}

void EvalEngine::setBackend(std::shared_ptr<const EvalBackend> backend) {
  if (backend == nullptr)
    throw std::invalid_argument("EvalEngine::setBackend: null backend");
  backend_ = std::move(backend);
}

void EvalEngine::saveState(io::SectionWriter& w) const {
  // Memo, sorted by (corner, grid indices) — unordered_map iteration order
  // is not stable, and deterministic bytes make save→load→save idempotent.
  std::vector<const std::pair<const EvalKey, core::EvalResult>*> entries;
  entries.reserve(cache_.size());
  for (const auto& kv : cache_.entries()) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
    if (a->first.cornerIndex != b->first.cornerIndex)
      return a->first.cornerIndex < b->first.cornerIndex;
    return a->first.indices < b->first.indices;
  });
  w.u64(entries.size());
  for (const auto* kv : entries) {
    w.indexVec(kv->first.indices);
    w.u64(kv->first.cornerIndex);
    io::writeEvalResult(w, kv->second);
  }
  io::writeLedger(w, ledger_);
  w.u64(stats_.requests);
  w.u64(stats_.simulated);
  w.u64(stats_.cacheHits);
  w.u64(stats_.sharedHits);
  w.f64(stats_.backendSeconds);
  w.u64(stats_.attempts);
  w.u64(stats_.faults);
  w.u64(stats_.failures);
  w.u64(stats_.backoffUnits);
  w.boolean(firstFailure_.valid);
  w.u64(firstFailure_.request);
  w.u64(firstFailure_.cornerIndex);
  w.u8(static_cast<std::uint8_t>(firstFailure_.cls));
  w.u64(firstFailure_.attempts);
}

void EvalEngine::restoreState(io::SectionReader& r) {
  cache_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    EvalKey key;
    key.indices = r.indexVec();
    key.cornerIndex = r.u64();
    if (key.indices.size() != space_.dim())
      r.fail("cache key dimensionality " + std::to_string(key.indices.size()) +
             " does not match the design space (" +
             std::to_string(space_.dim()) + ")");
    if (key.cornerIndex >= corners_.size())
      r.fail("cache key corner index " + std::to_string(key.cornerIndex) +
             " out of range (" + std::to_string(corners_.size()) +
             " corners)");
    core::EvalResult result = io::readEvalResult(r);
    // The live engine never memoizes poison; a snapshot claiming otherwise
    // is corrupt (or tampered) and must not seed a cache.
    if (result.failure != sim::FaultClass::kNone)
      r.fail("memoized result carries fault class '" +
             std::string(sim::faultClassName(result.failure)) + "'");
    if (result.ok && !allFinite(result.measurements))
      r.fail("memoized result carries non-finite measurements");
    cache_.insert(std::move(key), std::move(result));
  }
  io::readLedger(r, ledger_);
  stats_ = EvalStats{};
  firstFailure_ = FailureRecord{};
  stats_.requests = r.u64();
  stats_.simulated = r.u64();
  stats_.cacheHits = r.u64();
  stats_.sharedHits = r.u64();
  stats_.backendSeconds = r.f64();
  // Fault counters and the first-failure record arrived with container
  // format version 2; version-1 snapshots could only describe clean runs,
  // which the zeroed defaults state exactly.
  if (r.version() >= 2) {
    stats_.attempts = r.u64();
    stats_.faults = r.u64();
    stats_.failures = r.u64();
    stats_.backoffUnits = r.u64();
    firstFailure_.valid = r.boolean();
    firstFailure_.request = r.u64();
    firstFailure_.cornerIndex = r.u64();
    const std::uint8_t cls = r.u8();
    if (cls > static_cast<std::uint8_t>(sim::FaultClass::kNonFinite))
      r.fail("unknown fault class " + std::to_string(cls));
    firstFailure_.cls = static_cast<sim::FaultClass>(cls);
    firstFailure_.attempts = r.u64();
    if (firstFailure_.valid && firstFailure_.cls == sim::FaultClass::kNone)
      r.fail("first-failure record with no fault class");
    if (stats_.requests !=
        stats_.simulated + stats_.cacheHits + stats_.sharedHits +
            stats_.failures)
      r.fail("stats partition broken: requests != simulated + cacheHits + "
             "sharedHits + failures");
  }
  // The publish journal is deliberately not persisted: results simulated
  // before a snapshot re-enter the shared cache only by being re-requested,
  // never as stale cross-run publishes.
  unpublished_.clear();
}

core::EvalResult EvalEngine::runWithRetry(const MissRef& ref,
                                          MissTrace& trace) const {
  const RetryPolicy& retry = config_.retry;
  const std::size_t maxAttempts = std::max<std::size_t>(1, retry.maxAttempts);
  trace = MissTrace{};
  sim::FaultClass last = sim::FaultClass::kNone;
  for (std::size_t attempt = 0; attempt < maxAttempts; ++attempt) {
    EvalContext ctx;
    ctx.indices = ref.indices;
    ctx.cornerIndex = ref.cornerIndex;
    ctx.attempt = attempt;
    const auto t0 = std::chrono::steady_clock::now();
    core::EvalResult r =
        backend_->evaluate(*ref.sizes, corners_[ref.cornerIndex], ctx);
    const double elapsed = secondsSince(t0);
    trace.seconds += elapsed;
    // Classify the attempt: the backend's own verdict first, then the
    // wall-clock deadline, then the finiteness guard. The guard runs even
    // without any injector — a real backend emitting NaN must be treated as
    // a fault, not memoized and spread through shared caches.
    sim::FaultClass cls = r.failure;
    if (cls == sim::FaultClass::kNone && retry.timeoutSeconds > 0.0 &&
        elapsed > retry.timeoutSeconds)
      cls = sim::FaultClass::kTimeout;
    if (cls == sim::FaultClass::kNone && r.ok && !allFinite(r.measurements))
      cls = sim::FaultClass::kNonFinite;
    if (cls == sim::FaultClass::kNone) {
      trace.retries = static_cast<std::uint32_t>(attempt);
      return r;
    }
    last = cls;
    if (attempt + 1 < maxAttempts) {
      // Charge deterministic backoff for the retry about to happen. Units
      // are ledger bookkeeping, not sleeps: the cost model stays bitwise
      // reproducible and tests stay fast.
      const std::size_t unit =
          std::min(retry.backoffBase << attempt, retry.backoffCap);
      trace.backoff += static_cast<std::uint32_t>(unit);
    }
  }
  trace.retries = static_cast<std::uint32_t>(maxAttempts - 1);
  core::EvalResult failed;
  failed.ok = false;
  failed.failure = last;
  return failed;
}

void EvalEngine::runBatchWithRetry(std::vector<core::EvalResult>& results,
                                   std::size_t begin, std::size_t count) {
  const RetryPolicy& retry = config_.retry;
  const std::size_t maxAttempts = std::max<std::size_t>(1, retry.maxAttempts);
  // Lanes still awaiting a clean result, as offsets into the chunk.
  std::vector<std::size_t> active(count);
  for (std::size_t i = 0; i < count; ++i) {
    active[i] = i;
    missTrace_[begin + i] = MissTrace{};
  }
  std::vector<sim::FaultClass> last(count, sim::FaultClass::kNone);
  std::vector<const linalg::Vector*> sizes;
  std::vector<sim::PvtCorner> corners;
  std::vector<EvalContext> contexts;
  std::vector<core::EvalResult> attemptResults;
  for (std::size_t attempt = 0; attempt < maxAttempts && !active.empty();
       ++attempt) {
    sizes.clear();
    corners.clear();
    contexts.clear();
    for (const std::size_t lane : active) {
      const MissRef& ref = missRefs_[begin + lane];
      sizes.push_back(ref.sizes);
      corners.push_back(corners_[ref.cornerIndex]);
      EvalContext ctx;
      ctx.indices = ref.indices;
      ctx.cornerIndex = ref.cornerIndex;
      ctx.attempt = attempt;
      contexts.push_back(ctx);
    }
    attemptResults.assign(active.size(), core::EvalResult{});
    const auto t0 = std::chrono::steady_clock::now();
    backend_->evaluateBatch(sizes.data(), corners.data(), contexts.data(),
                            attemptResults.data(), active.size());
    const double elapsed = secondsSince(t0);
    // Wall time is charged once per backend call (stats_.backendSeconds sums
    // traces); it is measurement-only, so the lane attribution is free to
    // differ from the scalar path's.
    missTrace_[begin].seconds += elapsed;
    // Classify each lane exactly as runWithRetry would have (result fault,
    // wall-clock deadline, finiteness guard); the deadline uses the batch
    // call's elapsed time, which — like every wall-clock classification — is
    // outside the determinism contract.
    std::vector<std::size_t> still;
    for (std::size_t p = 0; p < active.size(); ++p) {
      const std::size_t lane = active[p];
      core::EvalResult& r = attemptResults[p];
      sim::FaultClass cls = r.failure;
      if (cls == sim::FaultClass::kNone && retry.timeoutSeconds > 0.0 &&
          elapsed > retry.timeoutSeconds)
        cls = sim::FaultClass::kTimeout;
      if (cls == sim::FaultClass::kNone && r.ok && !allFinite(r.measurements))
        cls = sim::FaultClass::kNonFinite;
      MissTrace& trace = missTrace_[begin + lane];
      if (cls == sim::FaultClass::kNone) {
        trace.retries = static_cast<std::uint32_t>(attempt);
        results[missRefs_[begin + lane].slot] = std::move(r);
        continue;
      }
      last[lane] = cls;
      if (attempt + 1 < maxAttempts) {
        const std::size_t unit =
            std::min(retry.backoffBase << attempt, retry.backoffCap);
        trace.backoff += static_cast<std::uint32_t>(unit);
        still.push_back(lane);
      } else {
        trace.retries = static_cast<std::uint32_t>(maxAttempts - 1);
        core::EvalResult failed;
        failed.ok = false;
        failed.failure = last[lane];
        results[missRefs_[begin + lane].slot] = std::move(failed);
      }
    }
    active.swap(still);
  }
}

void EvalEngine::dispatchMisses(std::vector<core::EvalResult>& results) {
  missTrace_.assign(missRefs_.size(), MissTrace{});
  const std::size_t nMiss = missRefs_.size();
  const std::size_t width =
      config_.batchedSim ? backend_->batchWidth() : std::size_t{1};
  if (width > 1) {
    // Chunk the miss queue into full lanes. A trailing chunk of exactly one
    // lane would pay for a whole wide simulator pass (width - 1 idle lanes)
    // to produce one result; the scalar path produces the identical bits —
    // that is the batch contract — at one lane's cost, so route it there.
    // Chunk boundaries still depend only on the miss count and the width,
    // and every path is bitwise per-slot identical, so the outcome is the
    // same for any thread count and any dispatch shape.
    const std::size_t batched = (nMiss % width == 1) ? nMiss - 1 : nMiss;
    const std::size_t chunks = (batched + width - 1) / width;
    const std::size_t tasks = chunks + (nMiss - batched);
    pool_.parallelFor(tasks, [&](std::size_t t) {
      if (t < chunks) {
        const std::size_t begin = t * width;
        runBatchWithRetry(results, begin, std::min(width, batched - begin));
      } else {
        const std::size_t m = batched + (t - chunks);
        results[missRefs_[m].slot] = runWithRetry(missRefs_[m], missTrace_[m]);
      }
    });
  } else {
    pool_.parallelFor(nMiss, [&](std::size_t m) {
      results[missRefs_[m].slot] = runWithRetry(missRefs_[m], missTrace_[m]);
    });
  }
  for (const MissTrace& t : missTrace_) stats_.backendSeconds += t.seconds;
  harvestSimPhases();
}

void EvalEngine::harvestSimPhases() {
  const sim::SimPhaseTotals now = sim::simPhaseTotals();
  stats_.simDeviceEvalNs += now.deviceEvalNs - phaseBase_.deviceEvalNs;
  stats_.simStampNs += now.stampNs - phaseBase_.stampNs;
  stats_.simFactorNs += now.factorNs - phaseBase_.factorNs;
  stats_.simSolveNs += now.solveNs - phaseBase_.solveNs;
  phaseBase_ = now;
}

void EvalEngine::accountRequest(std::size_t cornerIndex, pvt::BlockKind kind,
                                const core::EvalResult& result, bool cached,
                                bool shared, bool isMiss,
                                const MissTrace& trace) {
  const bool failed = result.failure != sim::FaultClass::kNone;
  ++stats_.requests;
  if (isMiss) {
    stats_.attempts += trace.retries + 1;
    stats_.backoffUnits += trace.backoff;
    stats_.faults += trace.retries + (failed ? 1 : 0);
  }
  if (failed) {
    ++stats_.failures;
    if (!firstFailure_.valid) {
      firstFailure_.valid = true;
      firstFailure_.request = stats_.requests - 1;
      firstFailure_.cornerIndex = cornerIndex;
      firstFailure_.cls = result.failure;
      firstFailure_.attempts = trace.retries + 1;
    }
  } else if (shared) {
    ++stats_.sharedHits;
  } else if (cached) {
    ++stats_.cacheHits;
  } else {
    ++stats_.simulated;
  }
  if (config_.recordLedger) {
    const bool meets = !failed && (meetsSpec_ ? meetsSpec_(result) : false);
    ledger_.record(cornerIndex, kind, meets, cached, failed, trace.retries,
                   trace.backoff);
  }
}

void EvalEngine::prepareKey(const linalg::Vector& sizes) {
  const std::size_t dim = space_.dim();
  assert(sizes.size() == dim);
  snapScratch_.resize(dim);
  keyScratch_.indices.resize(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    const std::size_t idx = space_.nearestIndex(d, sizes[d]);
    keyScratch_.indices[d] = idx;
    snapScratch_[d] = space_.gridValue(d, idx);
  }
}

std::vector<core::EvalResult> EvalEngine::evalBatch(
    const std::vector<std::size_t>& cornerIdx, const linalg::Vector& sizes,
    pvt::BlockKind kind) {
  const std::size_t n = cornerIdx.size();
  std::vector<core::EvalResult> results(n);
  if (n == 0) return results;
  // Snap here so the simulated point always matches the cache key, whatever
  // the caller passed.
  prepareKey(sizes);

  // ---- Probe the memos (and collapse in-batch duplicates) serially.
  missRefs_.clear();
  hitFlags_.assign(n, 0);
  sharedFlags_.assign(n, 0);
  dupOf_.assign(n, kNone);
  if (config_.cacheEvals) {
    for (std::size_t i = 0; i < n; ++i) {
      keyScratch_.cornerIndex = cornerIdx[i];
      if (const core::EvalResult* hit = cache_.find(keyScratch_)) {
        results[i] = *hit;
        hitFlags_[i] = 1;
        continue;
      }
      // Local miss: the cross-job cache may already hold the result. Copy a
      // shared hit into the local memo, so a repeat of the key inside this
      // batch (or later) becomes a plain local hit.
      if (shared_ != nullptr &&
          shared_->find(sharedScope_, keyScratch_, results[i])) {
        cache_.insert({keyScratch_.indices, cornerIdx[i]}, results[i]);
        hitFlags_[i] = 1;
        sharedFlags_[i] = 1;
        continue;
      }
      // A duplicate key within the batch can only repeat an earlier *miss*
      // (had the key been cached, both requests would have hit).
      for (const MissRef& m : missRefs_) {
        if (m.cornerIndex == cornerIdx[i]) {
          dupOf_[i] = m.slot;
          break;
        }
      }
      if (dupOf_[i] == kNone)
        missRefs_.push_back(
            {i, &snapScratch_, &keyScratch_.indices, cornerIdx[i]});
    }
  } else {
    for (std::size_t i = 0; i < n; ++i)
      missRefs_.push_back(
          {i, &snapScratch_, &keyScratch_.indices, cornerIdx[i]});
  }

  // ---- Fan the real simulations out; results land in per-request slots.
  // With a batch-capable backend, misses go down in consecutive chunks of
  // the backend's lane width (one fused simulator pass per chunk, chunks in
  // parallel, a lone trailing lane scalar); otherwise each miss runs its own
  // scalar retry loop. Chunk boundaries depend only on the miss list and the
  // width, and every path is bitwise per-slot identical, so the outcome is
  // the same for any thread count and either dispatch mode.
  dispatchMisses(results);

  // ---- Merge and account after the join, in request order: cache inserts,
  // ledger blocks, and counters are then identical for any thread count.
  std::size_t cursor = 0;  // missRefs_ slots ascend with i
  for (std::size_t i = 0; i < n; ++i) {
    const bool isMiss =
        cursor < missRefs_.size() && missRefs_[cursor].slot == i;
    const MissTrace trace = isMiss ? missTrace_[cursor++] : MissTrace{};
    if (dupOf_[i] != kNone) results[i] = results[dupOf_[i]];
    const bool failed = results[i].failure != sim::FaultClass::kNone;
    // A failed request is never "cached": poison enters no memo, and a
    // duplicate of a failed miss shares its failure, not a cache hit.
    const bool cached =
        !failed && (hitFlags_[i] != 0 || dupOf_[i] != kNone);
    if (config_.cacheEvals && isMiss && !failed) {
      cache_.insert({keyScratch_.indices, cornerIdx[i]}, results[i]);
      if (shared_ != nullptr)
        unpublished_.push_back({keyScratch_.indices, cornerIdx[i]});
    }
    accountRequest(cornerIdx[i], kind, results[i], cached,
                   sharedFlags_[i] != 0, isMiss, trace);
  }
  return results;
}

std::vector<core::EvalResult> EvalEngine::evalPacked(
    const std::vector<linalg::Vector>& points,
    const std::vector<std::size_t>& cornerIdx, pvt::BlockKind kind) {
  const std::size_t np = points.size();
  const std::size_t nc = cornerIdx.size();
  std::vector<core::EvalResult> results(np * nc);
  if (results.empty()) return results;

  // Snap every point once up front; the snapped sizings and index lists live
  // for the whole call because queued miss lanes point into them.
  packSnaps_.resize(np);
  packKeys_.resize(np);
  for (std::size_t p = 0; p < np; ++p) {
    prepareKey(points[p]);
    packSnaps_[p] = snapScratch_;
    packKeys_[p].indices = keyScratch_.indices;
  }

  // ---- Probe the memos serially, point-major — the same request order the
  // equivalent sequence of evalBatch calls would account in.
  missRefs_.clear();
  hitFlags_.assign(results.size(), 0);
  sharedFlags_.assign(results.size(), 0);
  dupOf_.assign(results.size(), kNone);
  for (std::size_t p = 0; p < np; ++p) {
    EvalKey& key = packKeys_[p];
    for (std::size_t c = 0; c < nc; ++c) {
      const std::size_t slot = p * nc + c;
      if (config_.cacheEvals) {
        key.cornerIndex = cornerIdx[c];
        if (const core::EvalResult* hit = cache_.find(key)) {
          results[slot] = *hit;
          hitFlags_[slot] = 1;
          continue;
        }
        if (shared_ != nullptr &&
            shared_->find(sharedScope_, key, results[slot])) {
          cache_.insert({key.indices, cornerIdx[c]}, results[slot]);
          hitFlags_[slot] = 1;
          sharedFlags_[slot] = 1;
          continue;
        }
        // In-call duplicate: same snapped grid cell and corner as an earlier
        // queued miss (points from different raw sizings can snap together).
        for (const MissRef& m : missRefs_) {
          if (m.cornerIndex == cornerIdx[c] && *m.indices == key.indices) {
            dupOf_[slot] = m.slot;
            break;
          }
        }
        if (dupOf_[slot] != kNone) continue;
      }
      missRefs_.push_back(
          {slot, &packSnaps_[p], &packKeys_[p].indices, cornerIdx[c]});
    }
  }

  // ---- One fused dispatch over every queued miss: lanes pack densely
  // across points, so per-point ragged tails stop wasting simulator lanes.
  dispatchMisses(results);

  // ---- Merge and account in flat slot order (= point-major request order).
  std::size_t cursor = 0;
  for (std::size_t slot = 0; slot < results.size(); ++slot) {
    const bool isMiss =
        cursor < missRefs_.size() && missRefs_[cursor].slot == slot;
    const MissTrace trace = isMiss ? missTrace_[cursor++] : MissTrace{};
    const std::size_t corner = cornerIdx[slot % nc];
    if (dupOf_[slot] != kNone) results[slot] = results[dupOf_[slot]];
    const bool failed = results[slot].failure != sim::FaultClass::kNone;
    const bool cached =
        !failed && (hitFlags_[slot] != 0 || dupOf_[slot] != kNone);
    if (config_.cacheEvals && isMiss && !failed) {
      cache_.insert({packKeys_[slot / nc].indices, corner}, results[slot]);
      if (shared_ != nullptr)
        unpublished_.push_back({packKeys_[slot / nc].indices, corner});
    }
    accountRequest(corner, kind, results[slot], cached,
                   sharedFlags_[slot] != 0, isMiss, trace);
  }
  return results;
}

core::EvalResult EvalEngine::evalOne(std::size_t cornerIdx,
                                     const linalg::Vector& sizes,
                                     pvt::BlockKind kind) {
  prepareKey(sizes);
  keyScratch_.cornerIndex = cornerIdx;
  if (config_.cacheEvals) {
    if (const core::EvalResult* hit = cache_.find(keyScratch_)) {
      const core::EvalResult result = *hit;
      accountRequest(cornerIdx, kind, result, /*cached=*/true,
                     /*shared=*/false, /*isMiss=*/false, MissTrace{});
      return result;
    }
    if (shared_ != nullptr) {
      core::EvalResult hit;
      if (shared_->find(sharedScope_, keyScratch_, hit)) {
        cache_.insert({keyScratch_.indices, cornerIdx}, hit);
        accountRequest(cornerIdx, kind, hit, /*cached=*/true,
                       /*shared=*/true, /*isMiss=*/false, MissTrace{});
        return hit;
      }
    }
  }
  MissTrace trace;
  const MissRef ref{0, &snapScratch_, &keyScratch_.indices, cornerIdx};
  core::EvalResult result = runWithRetry(ref, trace);
  stats_.backendSeconds += trace.seconds;
  harvestSimPhases();
  const bool failed = result.failure != sim::FaultClass::kNone;
  if (config_.cacheEvals && !failed) {
    cache_.insert({keyScratch_.indices, cornerIdx}, result);
    if (shared_ != nullptr)
      unpublished_.push_back({keyScratch_.indices, cornerIdx});
  }
  accountRequest(cornerIdx, kind, result, /*cached=*/false, /*shared=*/false,
                 /*isMiss=*/true, trace);
  return result;
}

}  // namespace trdse::eval
