// SPICE-style text netlist parsing and writing.
//
// The framework is a "SPICE decorator" (paper IV-F): designers keep their
// textual netlists. This reader accepts the common card subset the solvers
// support; the writer round-trips a Netlist back to text for inspection and
// for hand-off to an external simulator.
//
// Grammar (one card per line, '*' comments, case-insensitive prefixes):
//   R<name> n+ n- value
//   C<name> n+ n- value
//   L<name> n+ n- value
//   V<name> n+ n- dc [ac <mag>]
//   I<name> n+ n- dc [ac <mag>]
//   E<name> p n cp cn gain
//   G<name> p n cp cn gm
//   D<name> a k [is=<val>]
//   M<name> d g s b <nmos|pmos> w=<val> l=<val> [m=<val>]
//   .temp <celsius>
//   .end
// Values accept SPICE suffixes: f p n u m k meg g t.
#pragma once

#include <optional>
#include <string>

#include "sim/netlist.hpp"

namespace trdse::sim {

struct ParseError {
  std::size_t line = 0;
  std::string message;
};

struct ParseResult {
  std::optional<Netlist> netlist;  ///< engaged on success
  ParseError error;                ///< valid when !netlist
};

/// Parse a netlist from text. MOSFET cards take their parameters from
/// `card` (PVT-adjusted by `corner` exactly as the circuit builders do).
ParseResult parseNetlist(const std::string& text, const ProcessCard& card,
                         const PvtCorner& corner);

/// Parse a numeric literal with SPICE magnitude suffixes ("2.2k", "10u",
/// "1meg"); nullopt on malformed input.
std::optional<double> parseSpiceValue(const std::string& token);

/// Render a netlist back to card text (device parameters, not process cards).
std::string writeNetlist(const Netlist& netlist);

}  // namespace trdse::sim
