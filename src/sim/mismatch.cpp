#include "sim/mismatch.hpp"

#include <cmath>

namespace trdse::sim {

void applyMismatch(Netlist& netlist, const MismatchParams& params,
                   std::mt19937_64& rng) {
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (auto& fet : netlist.mosfetsMutable()) {
    const double area = fet.geom.w * fet.geom.l * fet.geom.m;
    if (area <= 0.0) continue;
    const double sigmaVt = params.avt / std::sqrt(area);
    const double sigmaKp = params.akp / std::sqrt(area);
    fet.params.vth0 += sigmaVt * gauss(rng);
    fet.params.kp *= std::max(0.1, 1.0 + sigmaKp * gauss(rng));
  }
}

}  // namespace trdse::sim
