// Batched operating-point engines. See op_batch.hpp for the lane-equivalence
// contract. Everything here replicates the scalar solvers' floating-point
// expressions literally, per lane, in the scalar stamp order; this TU is
// compiled with FP contraction off (see CMakeLists.txt) so the replicated
// expressions cannot fuse differently from the scalar TUs.
#include "sim/op_batch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "core/simd.hpp"
#include "linalg/cxmath.hpp"
#include "linalg/lu.hpp"
#include "sim/assembly_plan.hpp"
#include "sim/diode.hpp"
#include "sim/sim_profile.hpp"

namespace trdse::sim {

namespace {

constexpr int L = kSimLanes;

using simd::V4d;
using simd::V4i;
using simd::V4u;
using simd::V8d;

// ---------------------------------------------------------------------------
// Lane-blocked dense MNA system: entry (r, c) of lane l lives at
// a[(r*n + c)*L + l], so the four lanes of one cell are contiguous and the
// elimination / stamp inner loops vectorize across lanes.
// ---------------------------------------------------------------------------
struct LaneSystem {
  std::size_t n = 0;
  std::vector<double> a;    // (r*n + c)*L + l
  std::vector<double> rhs;  // i*L + l

  void reset(std::size_t dim) {
    n = dim;
    a.assign(n * n * static_cast<std::size_t>(L), 0.0);
    rhs.assign(n * static_cast<std::size_t>(L), 0.0);
  }
  void zero() {
    std::fill(a.begin(), a.end(), 0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);
  }
  double& at(std::size_t r, std::size_t c, int l) {
    return a[(r * n + c) * L + static_cast<std::size_t>(l)];
  }
  double& rv(std::size_t i, int l) {
    return rhs[i * L + static_cast<std::size_t>(l)];
  }
};

/// Lanes that are frozen, dead, or unused still go through the shared LU, so
/// give them a benign identity system (diag 1, rhs 0): factoring stays finite
/// and their solve output is all zeros (and discarded).
void clearLaneToIdentity(LaneSystem& sys, int l) {
  for (std::size_t r = 0; r < sys.n; ++r)
    for (std::size_t c = 0; c < sys.n; ++c) sys.at(r, c, l) = (r == c) ? 1.0 : 0.0;
  for (std::size_t i = 0; i < sys.n; ++i) sys.rv(i, l) = 0.0;
}

// Per-lane stamp helpers mirroring the scalar solvers' stampG/stampI/addAt
// (same ground skips, same += order).
void stampG(LaneSystem& sys, const Netlist& nl, int l, NodeId a, NodeId b,
            double g) {
  if (a != kGround) {
    const std::size_t ia = nl.nodeIndex(a);
    sys.at(ia, ia, l) += g;
    if (b != kGround) sys.at(ia, nl.nodeIndex(b), l) -= g;
  }
  if (b != kGround) {
    const std::size_t ib = nl.nodeIndex(b);
    sys.at(ib, ib, l) += g;
    if (a != kGround) sys.at(ib, nl.nodeIndex(a), l) -= g;
  }
}

void stampI(LaneSystem& sys, const Netlist& nl, int l, NodeId a, NodeId b,
            double i) {
  if (a != kGround) sys.rv(nl.nodeIndex(a), l) -= i;
  if (b != kGround) sys.rv(nl.nodeIndex(b), l) += i;
}

/// stampI into a bare lane-blocked vector (the transient per-step RHS).
void stampIVec(std::vector<double>& rhsB, const Netlist& nl, int l, NodeId a,
               NodeId b, double i) {
  if (a != kGround) rhsB[nl.nodeIndex(a) * L + static_cast<std::size_t>(l)] -= i;
  if (b != kGround) rhsB[nl.nodeIndex(b) * L + static_cast<std::size_t>(l)] += i;
}

void addAt(LaneSystem& sys, const Netlist& nl, int l, NodeId r, NodeId cNode,
           double c) {
  if (r == kGround || cNode == kGround) return;
  sys.at(nl.nodeIndex(r), nl.nodeIndex(cNode), l) += c;
}

// ---------------------------------------------------------------------------
// Lane-blocked real LU. Pivot choice and row swaps are per lane (identical to
// the scalar LuSolver's partial pivoting, decided on the lane's own values);
// the elimination arithmetic runs vectorized across the lane dimension, which
// per lane is the exact op sequence scalar factor() performs.
// ---------------------------------------------------------------------------
struct LaneLu {
  std::size_t n = 0;
  std::vector<double> lu;           // (r*n + c)*L + l
  std::vector<std::size_t> perm;    // i*L + l
  bool ok[L] = {};                  // per-lane "factored and nonsingular"

  /// Copy the (linear image) system in. The per-iteration nonlinear stamps
  /// then scatter straight into data() and factorInPlace() runs on it — one
  /// matrix copy per Newton round instead of the old stamp-into-work +
  /// copy-into-lu two-pass.
  void load(const LaneSystem& sys) {
    n = sys.n;
    lu.assign(sys.a.begin(), sys.a.end());
  }

  double* data() { return lu.data(); }

  void factorInPlace(const bool* want) {
    perm.resize(n * L);
    for (std::size_t i = 0; i < n; ++i)
      for (int l = 0; l < L; ++l) perm[i * L + l] = i;
    for (int l = 0; l < L; ++l) ok[l] = want[l];
    double* __restrict a = lu.data();

    for (std::size_t k = 0; k < n; ++k) {
      // Per-lane partial pivoting: largest magnitude in column k, as an
      // explicit 4-lane scan with a strict-greater first-wins mask blend. Per
      // lane the selection is identical to the scalar solver's (the mask only
      // fires on strictly greater, so ties and NaN candidates keep the
      // earlier row, like the scalar `>`). Dead lanes scan garbage
      // harmlessly.
      V4d best = simd::abs4(simd::load4(a + (k * n + k) * L));
      V4i pivotRow = simd::splatI4(static_cast<std::int64_t>(k));
      for (std::size_t r = k + 1; r < n; ++r) {
        const V4d m = simd::abs4(simd::load4(a + (r * n + k) * L));
        const V4i better = m > best;
        best = simd::select4(better, m, best);
        pivotRow = simd::selectI4(
            better, simd::splatI4(static_cast<std::int64_t>(r)), pivotRow);
      }
      for (int l = 0; l < L; ++l)
        if (ok[l] && best[l] < 1e-300)
          ok[l] = false;  // numerically singular (this lane only)
      const std::int64_t p0 = pivotRow[0];
      if (pivotRow[1] == p0 && pivotRow[2] == p0 && pivotRow[3] == p0) {
        // All lanes agree on the pivot (the common case for same-topology
        // batches): swap whole 4-lane rows. Pure data movement; dead lanes
        // ride along unobservably (their solution is never read).
        const std::size_t pivot = static_cast<std::size_t>(p0);
        if (pivot != k) {
          for (int l = 0; l < L; ++l)
            std::swap(perm[k * L + l], perm[pivot * L + l]);
          for (std::size_t c = 0; c < n; ++c) {
            const V4d rk = simd::load4(a + (k * n + c) * L);
            const V4d rp = simd::load4(a + (pivot * n + c) * L);
            simd::store4(a + (k * n + c) * L, rp);
            simd::store4(a + (pivot * n + c) * L, rk);
          }
        }
      } else {
        for (int l = 0; l < L; ++l) {
          if (!ok[l]) continue;
          const std::size_t pivot = static_cast<std::size_t>(pivotRow[l]);
          if (pivot != k) {
            std::swap(perm[k * L + l], perm[pivot * L + l]);
            for (std::size_t c = 0; c < n; ++c)
              std::swap(a[(k * n + c) * L + l], a[(pivot * n + c) * L + l]);
          }
        }
      }
      // Vectorized elimination. Lanes flagged !ok may compute garbage
      // (inf/NaN) here; their results are never read. rowR and rowK address
      // disjoint rows (r > k), so __restrict is legal. Row k's pivot lanes
      // are not written during the update of rows below it, so hoisting the
      // load is value-identical to reloading per row.
      const double* __restrict rowK = a + (k * n) * L;
      const V4d piv = simd::load4(rowK + k * L);
      // Two-row blocking shares each pivot-row load between rows r and r+1;
      // each row still runs exactly its scalar expression sequence.
      std::size_t r = k + 1;
      for (; r + 1 < n; r += 2) {
        double* __restrict rowR = a + (r * n) * L;
        double* __restrict rowQ = a + ((r + 1) * n) * L;
        const V4d f0 = simd::load4(rowR + k * L) / piv;
        const V4d f1 = simd::load4(rowQ + k * L) / piv;
        simd::store4(rowR + k * L, f0);
        simd::store4(rowQ + k * L, f1);
        for (std::size_t c = k + 1; c < n; ++c) {
          const V4d kc = simd::load4(rowK + c * L);
          simd::store4(rowR + c * L, simd::load4(rowR + c * L) - f0 * kc);
          simd::store4(rowQ + c * L, simd::load4(rowQ + c * L) - f1 * kc);
        }
      }
      for (; r < n; ++r) {
        double* __restrict rowR = a + (r * n) * L;
        const V4d f = simd::load4(rowR + k * L) / piv;
        simd::store4(rowR + k * L, f);
        for (std::size_t c = k + 1; c < n; ++c)
          simd::store4(rowR + c * L,
                       simd::load4(rowR + c * L) - f * simd::load4(rowK + c * L));
      }
    }
  }

  /// Per lane this is exactly LuSolver<double>::solveInto. `bB` must not
  /// alias `xB` (callers pass the system RHS and a separate solution
  /// buffer). The permutation gather stays scalar (lane-dependent rows); the
  /// triangular accumulations run as one V4d chain per row.
  void solve(const std::vector<double>& bB, std::vector<double>& xB) const {
    xB.resize(n * L);
    const double* __restrict lup = lu.data();
    const double* __restrict b = bB.data();
    double* __restrict x = xB.data();
    const std::size_t* __restrict pp = perm.data();
    for (std::size_t i = 0; i < n; ++i) {
      double init[L];
      for (int l = 0; l < L; ++l) init[l] = b[pp[i * L + l] * L + l];
      V4d acc = simd::load4(init);
      for (std::size_t j = 0; j < i; ++j)
        acc = acc - simd::load4(lup + (i * n + j) * L) * simd::load4(x + j * L);
      simd::store4(x + i * L, acc);
    }
    for (std::size_t ii = n; ii-- > 0;) {
      V4d acc = simd::load4(x + ii * L);
      for (std::size_t j = ii + 1; j < n; ++j)
        acc = acc - simd::load4(lup + (ii * n + j) * L) * simd::load4(x + j * L);
      simd::store4(x + ii * L, acc / simd::load4(lup + (ii * n + ii) * L));
    }
  }
};

// ---------------------------------------------------------------------------
// Per-device AoSoA contexts + per-round operating-point blocks. Lanes whose
// netlist pointer is null copy the reference lane's context (their outputs
// are never read, but the kernels must not see indeterminate inputs).
// ---------------------------------------------------------------------------
struct DeviceBlocks {
  std::vector<MosCtxBlock> mosCtx;
  std::vector<MosOpBlock> mosOp;
  std::vector<DiodeCtxBlock> dioCtx;
  std::vector<DiodeOpBlock> dioOp;
};

void buildDeviceBlocks(const std::array<const Netlist*, kSimLanes>& nls, int ref,
                       DeviceBlocks& db) {
  const Netlist& rnl = *nls[ref];
  db.mosCtx.resize(rnl.mosfets().size());
  db.mosOp.resize(rnl.mosfets().size());
  for (std::size_t k = 0; k < rnl.mosfets().size(); ++k) {
    for (int l = 0; l < L; ++l) {
      const Netlist& nl = nls[l] != nullptr ? *nls[l] : rnl;
      const auto& fet = nl.mosfets()[k];
      const MosDeviceCtx c = makeMosCtx(fet.params, fet.type, fet.geom, nl.tempK);
      db.mosCtx[k].sign[l] = c.sign;
      db.mosCtx[k].vt[l] = c.vt;
      db.mosCtx[k].n[l] = c.n;
      db.mosCtx[k].ispec[l] = c.ispec;
      db.mosCtx[k].sq0[l] = c.sq0;
      db.mosCtx[k].lambda[l] = c.lambda;
      db.mosCtx[k].vth0[l] = c.vth0;
      db.mosCtx[k].gamma[l] = c.gamma;
      db.mosCtx[k].phi[l] = c.phi;
      db.mosCtx[k].invN[l] = c.invN;
      db.mosCtx[k].invVtN[l] = c.invVtN;
      db.mosCtx[k].negInvVt[l] = c.negInvVt;
    }
  }
  db.dioCtx.resize(rnl.diodes().size());
  db.dioOp.resize(rnl.diodes().size());
  for (std::size_t k = 0; k < rnl.diodes().size(); ++k) {
    for (int l = 0; l < L; ++l) {
      const Netlist& nl = nls[l] != nullptr ? *nls[l] : rnl;
      const auto& d = nl.diodes()[k];
      db.dioCtx[k].isat[l] = d.isat;
      // Same expression evalDiode uses; contraction is off in both TUs.
      db.dioCtx[k].vt[l] = thermalVoltage(nl.tempK) * d.emission;
    }
  }
}

/// One lockstep round of device-card evaluation at each lane's current
/// voltages. Lanes with a null vector gather 0.0 (benign inputs; the outputs
/// of those lanes are discarded) — a dead lane's last iterate may hold
/// non-finite values the kernels must never see.
void evalDeviceBlocks(const Netlist& rnl, DeviceBlocks& db,
                      const std::array<const linalg::Vector*, kSimLanes>& v) {
  for (std::size_t k = 0; k < rnl.mosfets().size(); ++k) {
    const auto& fet = rnl.mosfets()[k];
    double vd[L], vg[L], vs[L], vb[L];
    for (int l = 0; l < L; ++l) {
      if (v[l] != nullptr) {
        vd[l] = (*v[l])[static_cast<std::size_t>(fet.d)];
        vg[l] = (*v[l])[static_cast<std::size_t>(fet.g)];
        vs[l] = (*v[l])[static_cast<std::size_t>(fet.s)];
        vb[l] = (*v[l])[static_cast<std::size_t>(fet.b)];
      } else {
        vd[l] = vg[l] = vs[l] = vb[l] = 0.0;
      }
    }
    evalMosBlock(db.mosCtx[k], vd, vg, vs, vb, db.mosOp[k]);
  }
  for (std::size_t k = 0; k < rnl.diodes().size(); ++k) {
    const auto& d = rnl.diodes()[k];
    double vak[L];
    for (int l = 0; l < L; ++l) {
      vak[l] = v[l] != nullptr ? (*v[l])[static_cast<std::size_t>(d.a)] -
                                     (*v[l])[static_cast<std::size_t>(d.k)]
                               : 0.0;
    }
    evalDiodeBlock(db.dioCtx[k], vak, db.dioOp[k]);
  }
}

/// clearLaneToIdentity on raw lane-blocked matrix/rhs storage (the LU panel a
/// plan scatter is about to run on).
void clearLaneRawToIdentity(double* a, double* rhs, std::size_t n, int l) {
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      a[(r * n + c) * L + static_cast<std::size_t>(l)] = (r == c) ? 1.0 : 0.0;
  for (std::size_t i = 0; i < n; ++i)
    rhs[i * L + static_cast<std::size_t>(l)] = 0.0;
}

/// Nonlinear (diode/MOS) Newton stamps through the precompiled plan tables,
/// with the lane loop innermost: the four lanes of one matrix cell are
/// contiguous, so each cell update is one vector add. Per lane this
/// accumulates exactly the scalar per-iteration sequence (diodes in netlist
/// order, then MOSFETs, same addAt order per device — distinct lanes are
/// independent slots, so interleaving across lanes is order-free). Lanes with
/// on[l] false blend in an addend of exactly 0.0, leaving their cells
/// bit-unchanged; their op-block values are finite (evalDeviceBlocks feeds
/// dead lanes 0.0 inputs) and their voltage gathers are masked to 0.0 so no
/// NaN enters the blend. Shared by the batched DC and transient engines —
/// both stamp the same linearized device companions onto their respective
/// linear images.
void scatterNonlinear(double* __restrict wa, double* __restrict wr,
                      const AssemblyPlan& plan, const DeviceBlocks& db,
                      const std::array<const linalg::Vector*, kSimLanes>& v,
                      const bool* on) {
  for (std::size_t k = 0; k < plan.dioIdx.size(); ++k) {
    const DiodeStampIdx& ix = plan.dioIdx[k];
    const DiodeOpBlock& op = db.dioOp[k];
    double mgd[L], ieq[L];
    for (int l = 0; l < L; ++l) {
      const double vak = on[l] ? (*v[l])[static_cast<std::size_t>(ix.a)] -
                                     (*v[l])[static_cast<std::size_t>(ix.k)]
                               : 0.0;
      const double gd = on[l] ? op.gd[l] : 0.0;
      const double id = on[l] ? op.id[l] : 0.0;
      mgd[l] = gd;
      ieq[l] = id - gd * vak;
    }
    if (ix.cell[0] >= 0)
      for (int l = 0; l < L; ++l) wa[ix.cell[0] * L + l] += mgd[l];
    if (ix.cell[1] >= 0)
      for (int l = 0; l < L; ++l) wa[ix.cell[1] * L + l] -= mgd[l];
    if (ix.cell[2] >= 0)
      for (int l = 0; l < L; ++l) wa[ix.cell[2] * L + l] += mgd[l];
    if (ix.cell[3] >= 0)
      for (int l = 0; l < L; ++l) wa[ix.cell[3] * L + l] -= mgd[l];
    if (ix.rhsA >= 0)
      for (int l = 0; l < L; ++l) wr[ix.rhsA * L + l] -= ieq[l];
    if (ix.rhsK >= 0)
      for (int l = 0; l < L; ++l) wr[ix.rhsK * L + l] += ieq[l];
  }
  for (std::size_t k = 0; k < plan.mosIdx.size(); ++k) {
    const MosStampIdx& ix = plan.mosIdx[k];
    const MosOpBlock& op = db.mosOp[k];
    double mv[4][L], ieq[L];
    for (int l = 0; l < L; ++l) {
      mv[0][l] = on[l] ? op.dIdVd[l] : 0.0;
      mv[1][l] = on[l] ? op.dIdVg[l] : 0.0;
      mv[2][l] = on[l] ? op.dIdVs[l] : 0.0;
      mv[3][l] = on[l] ? op.dIdVb[l] : 0.0;
    }
    for (int l = 0; l < L; ++l) {
      const double ids = on[l] ? op.ids[l] : 0.0;
      const double vd = on[l] ? (*v[l])[static_cast<std::size_t>(ix.d)] : 0.0;
      const double vg = on[l] ? (*v[l])[static_cast<std::size_t>(ix.g)] : 0.0;
      const double vs = on[l] ? (*v[l])[static_cast<std::size_t>(ix.s)] : 0.0;
      const double vb = on[l] ? (*v[l])[static_cast<std::size_t>(ix.b)] : 0.0;
      ieq[l] = ids - mv[0][l] * vd - mv[1][l] * vg - mv[2][l] * vs -
               mv[3][l] * vb;
    }
    for (int e = 0; e < 4; ++e)
      if (ix.cell[e] >= 0)
        for (int l = 0; l < L; ++l) wa[ix.cell[e] * L + l] += mv[e][l];
    for (int e = 0; e < 4; ++e)
      if (ix.cell[4 + e] >= 0)
        for (int l = 0; l < L; ++l) wa[ix.cell[4 + e] * L + l] -= mv[e][l];
    if (ix.rhsD >= 0)
      for (int l = 0; l < L; ++l) wr[ix.rhsD * L + l] -= ieq[l];
    if (ix.rhsS >= 0)
      for (int l = 0; l < L; ++l) wr[ix.rhsS * L + l] += ieq[l];
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// sameTopology
// ---------------------------------------------------------------------------
bool sameTopology(const Netlist& a, const Netlist& b) {
  if (a.nodeCount() != b.nodeCount()) return false;
  if (a.resistors().size() != b.resistors().size() ||
      a.capacitors().size() != b.capacitors().size() ||
      a.vsources().size() != b.vsources().size() ||
      a.isources().size() != b.isources().size() ||
      a.vcvs().size() != b.vcvs().size() || a.vccs().size() != b.vccs().size() ||
      a.diodes().size() != b.diodes().size() ||
      a.inductors().size() != b.inductors().size() ||
      a.mosfets().size() != b.mosfets().size())
    return false;
  for (std::size_t i = 0; i < a.resistors().size(); ++i)
    if (a.resistors()[i].a != b.resistors()[i].a ||
        a.resistors()[i].b != b.resistors()[i].b)
      return false;
  for (std::size_t i = 0; i < a.capacitors().size(); ++i)
    if (a.capacitors()[i].a != b.capacitors()[i].a ||
        a.capacitors()[i].b != b.capacitors()[i].b)
      return false;
  for (std::size_t i = 0; i < a.vsources().size(); ++i)
    if (a.vsources()[i].p != b.vsources()[i].p ||
        a.vsources()[i].n != b.vsources()[i].n)
      return false;
  for (std::size_t i = 0; i < a.isources().size(); ++i)
    if (a.isources()[i].p != b.isources()[i].p ||
        a.isources()[i].n != b.isources()[i].n)
      return false;
  for (std::size_t i = 0; i < a.vcvs().size(); ++i)
    if (a.vcvs()[i].p != b.vcvs()[i].p || a.vcvs()[i].n != b.vcvs()[i].n ||
        a.vcvs()[i].cp != b.vcvs()[i].cp || a.vcvs()[i].cn != b.vcvs()[i].cn)
      return false;
  for (std::size_t i = 0; i < a.vccs().size(); ++i)
    if (a.vccs()[i].p != b.vccs()[i].p || a.vccs()[i].n != b.vccs()[i].n ||
        a.vccs()[i].cp != b.vccs()[i].cp || a.vccs()[i].cn != b.vccs()[i].cn)
      return false;
  for (std::size_t i = 0; i < a.diodes().size(); ++i)
    if (a.diodes()[i].a != b.diodes()[i].a || a.diodes()[i].k != b.diodes()[i].k)
      return false;
  for (std::size_t i = 0; i < a.inductors().size(); ++i)
    if (a.inductors()[i].a != b.inductors()[i].a ||
        a.inductors()[i].b != b.inductors()[i].b)
      return false;
  for (std::size_t i = 0; i < a.mosfets().size(); ++i)
    if (a.mosfets()[i].d != b.mosfets()[i].d ||
        a.mosfets()[i].g != b.mosfets()[i].g ||
        a.mosfets()[i].s != b.mosfets()[i].s ||
        a.mosfets()[i].b != b.mosfets()[i].b)
      return false;
  return true;
}

// ---------------------------------------------------------------------------
// Batched DC
// ---------------------------------------------------------------------------
namespace {

// DcSolver::solve's fallback ladder, phase-encoded:
//   0        plain Newton from the guess
//   1..9     gmin stepping (kGminLadder), warm-started
//   10       retry at opts.gmin from the gmin-ladder warm vector (terminal on
//            convergence)
//   11..19   source stepping (kSrcLadder) at gmin = 1e-9
//   20       final attempt at opts.gmin (terminal regardless)
constexpr double kGminLadder[9] = {1e-3, 1e-4, 1e-5, 1e-6, 1e-7,
                                   1e-8, 1e-9, 1e-10, 1e-11};
constexpr double kSrcLadder[9] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

struct DcLane {
  bool active = false;
  bool done = false;
  int phase = 0;
  int iter = 0;        ///< completed iterations of the current loop
  int iterations = 0;  ///< scalar result.iterations bookkeeping
  double gmin = 0.0;
  double srcScale = 1.0;
  linalg::Vector v;     ///< current iterate (scalar result.v)
  linalg::Vector v0;    ///< original guess
  linalg::Vector warm;  ///< warm-start carry between ladder loops
  std::vector<double> xSave;  ///< solution column of the converged iteration
  DcResult result;
};

void dcEndLoop(DcLane& ln, bool converged, const Netlist& nl,
               const DcOptions& opts);

void dcStartLoop(DcLane& ln, const linalg::Vector& start, double gmin,
                 double srcScale, const Netlist& nl, const DcOptions& opts) {
  ln.v = start;
  ln.gmin = gmin;
  ln.srcScale = srcScale;
  ln.iter = 0;
  ln.iterations = 0;
  if (opts.maxIterations <= 0) dcEndLoop(ln, false, nl, opts);
}

/// Converged terminal loop: same finalization newtonLoop performs, through
/// the same scalar device kernels.
void dcFinalize(DcLane& ln, const Netlist& nl) {
  DcResult& r = ln.result;
  r.converged = true;
  r.iterations = ln.iterations;
  r.v = ln.v;
  r.branchCurrents.assign(nl.branchCount(), 0.0);
  for (std::size_t k = 0; k < nl.branchCount(); ++k)
    r.branchCurrents[k] = ln.xSave[nl.nodeCount() - 1 + k];
  r.diodeConductances.resize(nl.diodes().size());
  for (std::size_t k = 0; k < nl.diodes().size(); ++k) {
    const auto& d = nl.diodes()[k];
    const double vak =
        r.v[static_cast<std::size_t>(d.a)] - r.v[static_cast<std::size_t>(d.k)];
    r.diodeConductances[k] = evalDiode(d, vak, nl.tempK).gd;
  }
  r.mosOps.resize(nl.mosfets().size());
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& fet = nl.mosfets()[k];
    r.mosOps[k] = evalMos(fet.params, fet.type, fet.geom,
                          r.v[static_cast<std::size_t>(fet.d)],
                          r.v[static_cast<std::size_t>(fet.g)],
                          r.v[static_cast<std::size_t>(fet.s)],
                          r.v[static_cast<std::size_t>(fet.b)], nl.tempK);
  }
  ln.done = true;
}

void dcEndLoop(DcLane& ln, bool converged, const Netlist& nl,
               const DcOptions& opts) {
  if (ln.phase == 0) {
    if (converged) {
      dcFinalize(ln, nl);
      return;
    }
    ln.warm = ln.v0;
    ln.phase = 1;
    dcStartLoop(ln, ln.warm, kGminLadder[0], 1.0, nl, opts);
  } else if (ln.phase >= 1 && ln.phase <= 9) {
    if (converged) ln.warm = ln.v;
    if (ln.phase < 9) {
      ++ln.phase;
      dcStartLoop(ln, ln.warm, kGminLadder[ln.phase - 1], 1.0, nl, opts);
    } else {
      ln.phase = 10;
      dcStartLoop(ln, ln.warm, opts.gmin, 1.0, nl, opts);
    }
  } else if (ln.phase == 10) {
    if (converged) {
      dcFinalize(ln, nl);
      return;
    }
    ln.warm = ln.v0;
    ln.phase = 11;
    dcStartLoop(ln, ln.warm, 1e-9, kSrcLadder[0], nl, opts);
  } else if (ln.phase >= 11 && ln.phase <= 19) {
    if (converged) ln.warm = ln.v;
    if (ln.phase < 19) {
      ++ln.phase;
      dcStartLoop(ln, ln.warm, 1e-9, kSrcLadder[ln.phase - 11], nl, opts);
    } else {
      ln.phase = 20;
      dcStartLoop(ln, ln.warm, opts.gmin, 1.0, nl, opts);
    }
  } else {  // phase 20: terminal regardless
    if (converged) {
      dcFinalize(ln, nl);
      return;
    }
    ln.result.converged = false;
    ln.result.iterations = ln.iterations;
    ln.result.v = ln.v;
    ln.done = true;
  }
}

/// Lane l's *linear* DC image for one (gmin, srcScale) ladder setting:
/// everything newtonLoop stamps that does not depend on the Newton iterate —
/// resistors, the gmin diagonal, current sources, VCCS, inductor / vsource /
/// vcvs branch rows, and the vsource RHS assignments. The per-iteration
/// diode/MOS stamps are scattered onto a copy of this image each round; the
/// split is bitwise-safe because every matrix cell and RHS row a nonlinear
/// device touches receives its linear contributions from stamps that also
/// precede the nonlinear ones in newtonLoop's order (the later linear stamps
/// — inductor/vsource/vcvs — only touch branch rows/columns, which are
/// disjoint from the node-node cells and node RHS rows the diode/MOS stamps
/// accumulate into).
void stampDcLinear(LaneSystem& sys, const Netlist& nl, int l, double gmin,
                   double srcScale) {
  for (const auto& r : nl.resistors()) stampG(sys, nl, l, r.a, r.b, 1.0 / r.ohms);
  for (std::size_t i = 1; i < nl.nodeCount(); ++i) {
    const std::size_t d = nl.nodeIndex(static_cast<NodeId>(i));
    sys.at(d, d, l) += gmin;
  }
  for (const auto& src : nl.isources())
    stampI(sys, nl, l, src.p, src.n, src.idc * srcScale);
  for (const auto& g : nl.vccs()) {
    addAt(sys, nl, l, g.p, g.cp, g.gm);
    addAt(sys, nl, l, g.p, g.cn, -g.gm);
    addAt(sys, nl, l, g.n, g.cp, -g.gm);
    addAt(sys, nl, l, g.n, g.cn, g.gm);
  }
  for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
    const auto& ind = nl.inductors()[k];
    const std::size_t br = nl.inductorBranchIndex(k);
    if (ind.a != kGround) {
      sys.at(nl.nodeIndex(ind.a), br, l) += 1.0;
      sys.at(br, nl.nodeIndex(ind.a), l) += 1.0;
    }
    if (ind.b != kGround) {
      sys.at(nl.nodeIndex(ind.b), br, l) -= 1.0;
      sys.at(br, nl.nodeIndex(ind.b), l) -= 1.0;
    }
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const std::size_t br = nl.vsourceBranchIndex(k);
    if (src.p != kGround) {
      sys.at(nl.nodeIndex(src.p), br, l) += 1.0;
      sys.at(br, nl.nodeIndex(src.p), l) += 1.0;
    }
    if (src.n != kGround) {
      sys.at(nl.nodeIndex(src.n), br, l) -= 1.0;
      sys.at(br, nl.nodeIndex(src.n), l) -= 1.0;
    }
    sys.rv(br, l) = src.vdc * srcScale;
  }
  for (std::size_t k = 0; k < nl.vcvs().size(); ++k) {
    const auto& e = nl.vcvs()[k];
    const std::size_t br = nl.vcvsBranchIndex(k);
    if (e.p != kGround) {
      sys.at(nl.nodeIndex(e.p), br, l) += 1.0;
      sys.at(br, nl.nodeIndex(e.p), l) += 1.0;
    }
    if (e.n != kGround) {
      sys.at(nl.nodeIndex(e.n), br, l) -= 1.0;
      sys.at(br, nl.nodeIndex(e.n), l) -= 1.0;
    }
    if (e.cp != kGround) sys.at(br, nl.nodeIndex(e.cp), l) -= e.gain;
    if (e.cn != kGround) sys.at(br, nl.nodeIndex(e.cn), l) += e.gain;
  }
}

void zeroLane(LaneSystem& sys, int l) {
  for (std::size_t i = 0; i < sys.n * sys.n; ++i)
    sys.a[i * L + static_cast<std::size_t>(l)] = 0.0;
  for (std::size_t i = 0; i < sys.n; ++i)
    sys.rv(i, l) = 0.0;
}

// ---------------------------------------------------------------------------
// Persistent batch workspaces. One solve used to allocate its lane system,
// LU panel, permutation array and solution buffer fresh (~20 heap
// allocations); engine pool workers run thousands of solves over the same
// one or two matrix sizes, so the buffers are pooled per thread and reused.
// Ownership rules (see docs/ARCHITECTURE.md): a workspace holds *values*,
// never structure — every acquire re-derives sizes from the netlists at
// hand, so a workspace that last served a different topology simply
// re-sizes (vector::assign reuses capacity). Lease lifetime is the solve
// call (DC) or the TransientBatch object; workspaces never outlive their
// thread's freelist.
// ---------------------------------------------------------------------------
struct BatchWorkspace {
  LaneSystem lin;  ///< linear image: DC ladder image / transient base (+ rhs)
  LaneLu lu;
  std::vector<double> workRhs;
  std::vector<double> stepRhs;
  std::vector<double> xB;
  DeviceBlocks db;
  std::array<DcLane, L> dcLanes;
};

std::vector<std::unique_ptr<BatchWorkspace>>& workspacePool() {
  thread_local std::vector<std::unique_ptr<BatchWorkspace>> pool;
  return pool;
}

struct WorkspaceLease {
  std::unique_ptr<BatchWorkspace> ws;

  WorkspaceLease() {
    auto& pool = workspacePool();
    if (!pool.empty()) {
      ws = std::move(pool.back());
      pool.pop_back();
    } else {
      ws = std::make_unique<BatchWorkspace>();
    }
  }
  ~WorkspaceLease() {
    auto& pool = workspacePool();
    // Bounded: a worker thread at steady state holds one DC lease plus a
    // handful of live TransientBatch objects.
    if (ws != nullptr && pool.size() < 8) pool.push_back(std::move(ws));
  }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  BatchWorkspace& operator*() { return *ws; }
  BatchWorkspace* operator->() { return ws.get(); }
};

}  // namespace

std::array<DcResult, kSimLanes> solveDcBatch(
    const std::array<const Netlist*, kSimLanes>& nls,
    const std::array<const linalg::Vector*, kSimLanes>& guesses,
    const DcOptions& opts) {
  std::array<DcResult, kSimLanes> out;
  int ref = -1;
  for (int l = 0; l < L; ++l)
    if (nls[l] != nullptr && ref < 0) ref = l;
  if (ref < 0) return out;
  const Netlist& rnl = *nls[ref];
  const std::size_t n = rnl.unknownCount();
  const std::size_t nodes = rnl.nodeCount();

  const PlanHandle plan = acquirePlan(rnl);
  WorkspaceLease wsl;
  BatchWorkspace& ws = *wsl;
  DeviceBlocks& db = ws.db;
  buildDeviceBlocks(nls, ref, db);

  std::array<DcLane, L>& lanes = ws.dcLanes;
  for (int l = 0; l < L; ++l) {
    DcLane& ln = lanes[l];
    ln.active = ln.done = false;
    ln.phase = 0;
    ln.iter = ln.iterations = 0;
    ln.gmin = 0.0;
    ln.srcScale = 1.0;
    ln.result = DcResult{};
  }
  for (int l = 0; l < L; ++l) {
    if (nls[l] == nullptr) continue;
    assert(sameTopology(rnl, *nls[l]));
    DcLane& ln = lanes[l];
    ln.active = true;
    if (guesses[l] != nullptr && guesses[l]->size() == nodes) {
      ln.v0 = *guesses[l];
    } else {
      ln.v0.assign(nodes, 0.0);
    }
    dcStartLoop(ln, ln.v0, opts.gmin, 1.0, *nls[l], opts);
  }

  LaneSystem& lin = ws.lin;
  lin.reset(n);
  LaneLu& lu = ws.lu;
  std::vector<double>& workRhs = ws.workRhs;
  std::vector<double>& xB = ws.xB;
  xB.assign(n * static_cast<std::size_t>(L), 0.0);

  // Which (gmin, srcScale) setting each lane's slice of the linear image
  // currently holds. A lane's image is only rebuilt when its ladder phase
  // changes that pair — in the common converge-at-phase-0 case it is stamped
  // exactly once per solve instead of once per Newton iteration.
  double stampedGmin[L];
  double stampedSrc[L];
  bool stampedValid[L] = {};
  bool stampedIdentity[L] = {};

  auto anyLive = [&lanes]() {
    for (const DcLane& ln : lanes)
      if (ln.active && !ln.done) return true;
    return false;
  };

  while (anyLive()) {
    std::array<const linalg::Vector*, L> vl{};
    bool live[L] = {};
    for (int l = 0; l < L; ++l) {
      if (lanes[l].active && !lanes[l].done) {
        live[l] = true;
        vl[l] = &lanes[l].v;
      }
    }
    {
      SimPhaseTimer timer(SimPhase::kDeviceEval);
      evalDeviceBlocks(rnl, db, vl);
    }
    {
      SimPhaseTimer timer(SimPhase::kStamp);
      for (int l = 0; l < L; ++l) {
        if (live[l]) {
          const DcLane& ln = lanes[l];
          if (!stampedValid[l] || stampedGmin[l] != ln.gmin ||
              stampedSrc[l] != ln.srcScale) {
            zeroLane(lin, l);
            stampDcLinear(lin, *nls[l], l, ln.gmin, ln.srcScale);
            stampedGmin[l] = ln.gmin;
            stampedSrc[l] = ln.srcScale;
            stampedValid[l] = true;
            stampedIdentity[l] = false;
          }
        } else if (!stampedIdentity[l]) {
          clearLaneToIdentity(lin, l);
          stampedIdentity[l] = true;
          stampedValid[l] = false;
        }
      }
      lu.load(lin);
      workRhs.assign(lin.rhs.begin(), lin.rhs.end());
      scatterNonlinear(lu.data(), workRhs.data(), *plan, db, vl, live);
    }
    {
      SimPhaseTimer timer(SimPhase::kFactor);
      lu.factorInPlace(live);
    }
    {
      SimPhaseTimer timer(SimPhase::kSolve);
      lu.solve(workRhs, xB);
    }
    for (int l = 0; l < L; ++l) {
      if (!live[l]) continue;
      DcLane& ln = lanes[l];
      const Netlist& nl = *nls[l];
      if (!lu.ok[l]) {
        ln.iterations = ln.iter;  // scalar: result.iterations = iter on singular
        dcEndLoop(ln, false, nl, opts);
        continue;
      }
      double maxStep = 0.0;
      for (std::size_t i = 1; i < nodes; ++i) {
        const double vNew = xB[(i - 1) * L + l];
        const double dv = vNew - ln.v[i];
        maxStep = std::max(maxStep, std::abs(dv));
        ln.v[i] += std::clamp(dv, -opts.damping, opts.damping);
      }
      ln.iterations = ln.iter + 1;
      ++ln.iter;
      const double vScale = linalg::normInf(ln.v);
      if (maxStep < opts.tolAbs + opts.tolRel * vScale) {
        ln.xSave.resize(n);
        for (std::size_t j = 0; j < n; ++j) ln.xSave[j] = xB[j * L + l];
        dcEndLoop(ln, true, nl, opts);
      } else if (ln.iter >= opts.maxIterations) {
        dcEndLoop(ln, false, nl, opts);
      }
    }
  }

  for (int l = 0; l < L; ++l)
    if (lanes[l].active) out[l] = std::move(lanes[l].result);
  return out;
}

// ---------------------------------------------------------------------------
// Batched transient
// ---------------------------------------------------------------------------
namespace {

// Companion states, one set per lane, in TransientSolver::run's collection
// order (explicit capacitors first, then per-MOSFET parasitics).
struct BatchCapState {
  NodeId a = kGround;
  NodeId b = kGround;
  double c = 0.0;
  double vPrev = 0.0;
  double iPrev = 0.0;
};

struct BatchIndState {
  double iPrev = 0.0;
  double vPrev = 0.0;
};

/// Lane l's step-invariant (linear) matrix part: resistors, gmin, VCCS,
/// inductor/vsource/vcvs branch rows, capacitor companion conductances. The
/// per-cell accumulation order matches the scalar per-iteration stamping
/// (the nonlinear diode/MOS stamps are added on a copy each Newton round).
void stampTransientBase(LaneSystem& base, const Netlist& nl, int l,
                        const std::vector<BatchCapState>& caps, double h) {
  for (const auto& r : nl.resistors()) stampG(base, nl, l, r.a, r.b, 1.0 / r.ohms);
  for (std::size_t i = 1; i < nl.nodeCount(); ++i)
    base.at(i - 1, i - 1, l) += 1e-12;  // gmin
  for (const auto& g : nl.vccs()) {
    addAt(base, nl, l, g.p, g.cp, g.gm);
    addAt(base, nl, l, g.p, g.cn, -g.gm);
    addAt(base, nl, l, g.n, g.cp, -g.gm);
    addAt(base, nl, l, g.n, g.cn, g.gm);
  }
  for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
    const auto& ind = nl.inductors()[k];
    const std::size_t br = nl.inductorBranchIndex(k);
    if (ind.a != kGround) {
      base.at(nl.nodeIndex(ind.a), br, l) += 1.0;
      base.at(br, nl.nodeIndex(ind.a), l) += 1.0;
    }
    if (ind.b != kGround) {
      base.at(nl.nodeIndex(ind.b), br, l) -= 1.0;
      base.at(br, nl.nodeIndex(ind.b), l) -= 1.0;
    }
    const double zeq = 2.0 * ind.henry / h;
    base.at(br, br, l) -= zeq;
  }
  for (const auto& cs : caps) {
    const double geq = 2.0 * cs.c / h;
    stampG(base, nl, l, cs.a, cs.b, geq);
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const std::size_t br = nl.vsourceBranchIndex(k);
    if (src.p != kGround) {
      base.at(nl.nodeIndex(src.p), br, l) += 1.0;
      base.at(br, nl.nodeIndex(src.p), l) += 1.0;
    }
    if (src.n != kGround) {
      base.at(nl.nodeIndex(src.n), br, l) -= 1.0;
      base.at(br, nl.nodeIndex(src.n), l) -= 1.0;
    }
  }
  for (std::size_t k = 0; k < nl.vcvs().size(); ++k) {
    const auto& e = nl.vcvs()[k];
    const std::size_t br = nl.vcvsBranchIndex(k);
    if (e.p != kGround) {
      base.at(nl.nodeIndex(e.p), br, l) += 1.0;
      base.at(br, nl.nodeIndex(e.p), l) += 1.0;
    }
    if (e.n != kGround) {
      base.at(nl.nodeIndex(e.n), br, l) -= 1.0;
      base.at(br, nl.nodeIndex(e.n), l) -= 1.0;
    }
    if (e.cp != kGround) base.at(br, nl.nodeIndex(e.cp), l) -= e.gain;
    if (e.cn != kGround) base.at(br, nl.nodeIndex(e.cn), l) += e.gain;
  }
}

}  // namespace

struct TransientBatch::Impl {
  std::array<const Netlist*, L> nls{};
  TransientOptions opts;
  int ref = -1;
  std::size_t n = 0;
  std::size_t nodes = 0;
  std::size_t nBranches = 0;
  std::size_t totalSteps = 0;
  std::size_t done = 0;
  bool active[L] = {};
  bool alive[L] = {};  ///< still recording (no singular matrix / Newton fail)
  std::array<TransientResult, L> results;
  std::array<linalg::Vector, L> v;      ///< last accepted node voltages
  std::array<linalg::Vector, L> vIter;  ///< Newton iterate scratch
  std::array<std::vector<BatchCapState>, L> caps;
  std::array<std::vector<BatchIndState>, L> inds;
  std::array<std::vector<double>, L> xSave;  ///< converged-round solution
  PlanHandle plan;  ///< cached per-topology scatter tables
  /// Pooled buffers: the base image lives in ws->lin (rhs member unused),
  /// the Newton round runs on ws->lu / ws->workRhs / ws->stepRhs / ws->xB.
  WorkspaceLease ws;

  void doStep(std::size_t stepIndex);
};

void TransientBatch::Impl::doStep(std::size_t stepIndex) {
  const Netlist& rnl = *nls[ref];
  const double h = opts.dt;
  std::vector<double>& stepRhs = ws->stepRhs;
  std::vector<double>& workRhs = ws->workRhs;
  std::vector<double>& xB = ws->xB;
  LaneLu& lu = ws->lu;

  // Per-step RHS: sources + linear companion currents. Node entries
  // accumulate as isources then capacitors — the scalar per-iteration order
  // with the nonlinear (diode/MOS) contributions appended per round below.
  {
    SimPhaseTimer timer(SimPhase::kStamp);
    std::fill(stepRhs.begin(), stepRhs.end(), 0.0);
    for (int l = 0; l < L; ++l) {
      if (!alive[l]) continue;
      const Netlist& nl = *nls[l];
      for (const auto& src : nl.isources())
        stampIVec(stepRhs, nl, l, src.p, src.n, src.idc);
      for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
        const auto& ind = nl.inductors()[k];
        const double zeq = 2.0 * ind.henry / h;
        stepRhs[nl.inductorBranchIndex(k) * L + static_cast<std::size_t>(l)] =
            -(inds[l][k].vPrev + zeq * inds[l][k].iPrev);
      }
      for (const auto& cs : caps[l]) {
        const double geq = 2.0 * cs.c / h;
        const double ieq = -geq * cs.vPrev - cs.iPrev;
        stampIVec(stepRhs, nl, l, cs.a, cs.b, ieq);
      }
      for (std::size_t k = 0; k < nl.vsources().size(); ++k)
        stepRhs[nl.vsourceBranchIndex(k) * L + static_cast<std::size_t>(l)] =
            nl.vsources()[k].vdc;
    }
  }

  bool iterating[L] = {};
  bool frozen[L] = {};
  for (int l = 0; l < L; ++l) {
    if (!alive[l]) continue;
    iterating[l] = true;
    vIter[l] = v[l];  // scalar warm start from the last accepted point
  }
  auto anyIterating = [&iterating]() {
    for (int l = 0; l < L; ++l)
      if (iterating[l]) return true;
    return false;
  };

  for (int it = 0; it < opts.maxNewtonIterations && anyIterating(); ++it) {
    std::array<const linalg::Vector*, L> vl{};
    for (int l = 0; l < L; ++l)
      if (iterating[l]) vl[l] = &vIter[l];
    {
      SimPhaseTimer timer(SimPhase::kDeviceEval);
      evalDeviceBlocks(rnl, ws->db, vl);
    }
    {
      SimPhaseTimer timer(SimPhase::kStamp);
      // One copy of the precomputed base image straight into the LU panel
      // (the old flow stamped into a work system and copied again inside
      // factor), then the plan-table nonlinear scatter on top.
      lu.load(ws->lin);
      workRhs.assign(stepRhs.begin(), stepRhs.end());
      for (int l = 0; l < L; ++l)
        if (!iterating[l])
          clearLaneRawToIdentity(lu.data(), workRhs.data(), n, l);
      scatterNonlinear(lu.data(), workRhs.data(), *plan, ws->db, vl, iterating);
    }
    {
      SimPhaseTimer timer(SimPhase::kFactor);
      lu.factorInPlace(iterating);
    }
    SimPhaseTimer timer(SimPhase::kSolve);
    lu.solve(workRhs, xB);
    for (int l = 0; l < L; ++l) {
      if (!iterating[l]) continue;
      if (!lu.ok[l]) {
        // Scalar: `if (!lu.factor(A)) return result;` — the lane stops
        // recording mid-run, completed stays false.
        alive[l] = false;
        iterating[l] = false;
        continue;
      }
      double maxStep = 0.0;
      for (std::size_t i = 1; i < nodes; ++i) {
        const double dv = xB[(i - 1) * L + l] - vIter[l][i];
        maxStep = std::max(maxStep, std::abs(dv));
        vIter[l][i] = xB[(i - 1) * L + l];
      }
      if (maxStep < opts.tolAbs) {
        frozen[l] = true;
        iterating[l] = false;
        xSave[l].resize(n);
        for (std::size_t j = 0; j < n; ++j) xSave[l][j] = xB[j * L + l];
      }
    }
  }

  for (int l = 0; l < L; ++l) {
    if (!alive[l]) continue;
    if (!frozen[l]) {
      // Newton exhausted its iteration budget: scalar returns mid-run.
      alive[l] = false;
      continue;
    }
    const Netlist& nl = *nls[l];
    // Accept the step: update companion states (scalar order).
    for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
      const auto& ind = nl.inductors()[k];
      const double vNow = vIter[l][static_cast<std::size_t>(ind.a)] -
                          vIter[l][static_cast<std::size_t>(ind.b)];
      inds[l][k].iPrev = xSave[l][nl.inductorBranchIndex(k)];
      inds[l][k].vPrev = vNow;
    }
    for (auto& cs : caps[l]) {
      const double vNow = vIter[l][static_cast<std::size_t>(cs.a)] -
                          vIter[l][static_cast<std::size_t>(cs.b)];
      const double geq = 2.0 * cs.c / h;
      const double iNow = geq * (vNow - cs.vPrev) - cs.iPrev;
      cs.vPrev = vNow;
      cs.iPrev = iNow;
    }
    v[l] = vIter[l];
    results[l].times.push_back(static_cast<double>(stepIndex) * h);
    results[l].voltages.push_back(v[l]);
    linalg::Vector br(nBranches, 0.0);
    for (std::size_t k = 0; k < nBranches; ++k)
      br[k] = xSave[l][nl.nodeCount() - 1 + k];
    results[l].branchCurrents.push_back(std::move(br));
  }
}

TransientBatch::TransientBatch(
    const std::array<const Netlist*, kSimLanes>& nls,
    const TransientOptions& opts,
    const std::array<const linalg::Vector*, kSimLanes>& initial)
    : impl_(new Impl) {
  Impl& im = *impl_;
  im.nls = nls;
  im.opts = opts;
  for (int l = 0; l < L; ++l)
    if (nls[l] != nullptr && im.ref < 0) im.ref = l;
  assert(im.ref >= 0 && "TransientBatch needs at least one active lane");
  const Netlist& rnl = *nls[im.ref];
  im.n = rnl.unknownCount();
  im.nodes = rnl.nodeCount();
  im.nBranches = rnl.branchCount();
  const double h = opts.dt;
  im.totalSteps = static_cast<std::size_t>(opts.tStop / h);
  im.plan = acquirePlan(rnl);
  BatchWorkspace& ws = *im.ws;
  buildDeviceBlocks(nls, im.ref, ws.db);
  ws.lin.reset(im.n);
  ws.stepRhs.assign(im.n * static_cast<std::size_t>(L), 0.0);
  ws.workRhs.assign(im.n * static_cast<std::size_t>(L), 0.0);
  ws.xB.assign(im.n * static_cast<std::size_t>(L), 0.0);
  for (int l = 0; l < L; ++l) {
    if (nls[l] == nullptr) {
      clearLaneToIdentity(ws.lin, l);
      continue;
    }
    assert(sameTopology(rnl, *nls[l]));
    assert(initial[l] != nullptr && initial[l]->size() == im.nodes);
    im.active[l] = im.alive[l] = true;
    im.v[l] = *initial[l];
    const Netlist& nl = *nls[l];
    for (const auto& c : nl.capacitors())
      im.caps[l].push_back({c.a, c.b, c.farads, 0, 0});
    if (opts.includeDeviceCaps) {
      for (const auto& fet : nl.mosfets()) {
        const double cgg = gateCapacitance(fet.params, fet.geom);
        im.caps[l].push_back({fet.g, fet.s, 0.7 * cgg, 0, 0});
        im.caps[l].push_back({fet.g, fet.d, 0.3 * cgg, 0, 0});
        im.caps[l].push_back(
            {fet.d, fet.b, drainCapacitance(fet.params, fet.geom), 0, 0});
      }
    }
    for (auto& cs : im.caps[l]) {
      cs.vPrev = im.v[l][static_cast<std::size_t>(cs.a)] -
                 im.v[l][static_cast<std::size_t>(cs.b)];
      cs.iPrev = 0.0;
    }
    im.inds[l].resize(nl.inductors().size());
    for (std::size_t k = 0; k < im.inds[l].size(); ++k) {
      const auto& ind = nl.inductors()[k];
      im.inds[l][k].vPrev = im.v[l][static_cast<std::size_t>(ind.a)] -
                            im.v[l][static_cast<std::size_t>(ind.b)];
    }
    TransientResult& res = im.results[l];
    res.times.reserve(im.totalSteps + 1);
    res.voltages.reserve(im.totalSteps + 1);
    res.branchCurrents.reserve(im.totalSteps + 1);
    res.times.push_back(0.0);
    res.voltages.push_back(im.v[l]);
    res.branchCurrents.emplace_back(im.nBranches, 0.0);
    stampTransientBase(ws.lin, nl, l, im.caps[l], h);
  }
}

TransientBatch::~TransientBatch() = default;

std::size_t TransientBatch::totalSteps() const { return impl_->totalSteps; }

std::size_t TransientBatch::stepsDone() const { return impl_->done; }

void TransientBatch::step(std::size_t n) {
  Impl& im = *impl_;
  while (n > 0 && im.done < im.totalSteps) {
    ++im.done;
    --n;
    bool any = false;
    for (int l = 0; l < L; ++l) any = any || im.alive[l];
    if (any) im.doStep(im.done);
  }
  if (im.done == im.totalSteps) {
    for (int l = 0; l < L; ++l)
      if (im.alive[l]) im.results[l].completed = true;
  }
}

void TransientBatch::run() { step(impl_->totalSteps); }

const TransientResult& TransientBatch::result(int lane) const {
  assert(lane >= 0 && lane < L && impl_->active[lane]);
  return impl_->results[lane];
}

TransientResult TransientBatch::takeResult(int lane) {
  assert(lane >= 0 && lane < L && impl_->active[lane]);
  return std::move(impl_->results[lane]);
}

// ---------------------------------------------------------------------------
// Batched AC: lane-blocked complex LU over split re/im planes.
//
// Per lane this performs the exact op sequence of LuSolver<complex<double>>:
// the schoolbook multiply (ar*br - ai*bi, ar*bi + ai*br) written out below is
// the same linalg::cxMul expression the scalar complex LU spells out (see
// cxmath.hpp for why neither path may use std::complex operator*), and the
// reciprocal-multiply division goes through the shared cxReciprocal. Any
// non-finite excursion is still detected by the per-lane sticky finiteness
// flag, and flagged lanes are redone through the scalar AcSolver by the
// caller.
// ---------------------------------------------------------------------------
struct AcBatch::Impl {
  std::array<std::unique_ptr<AcSolver>, L> solvers;
  bool active[L] = {};
  bool finite[L] = {true, true, true, true};
  bool solveOk[L] = {};  ///< per-solveAt nonsingular flag
  int ref = -1;
  std::size_t n = 0;
  // Lane- and plane-interleaved storage: matrix cell (r, c) occupies one
  // 64-byte group of 8 doubles at (r*n + c)*2L, the first four lanes being
  // the real (G) plane and the next four the imaginary (C) plane. gc holds
  // the frequency-independent G/C stamp images, built once; every solveAt
  // assembles G + jwC into lu as a single linear V4d pass, and the complex
  // elimination/solve kernels touch exactly one cache line per cell.
  std::vector<double> gc, lu;      // (r*n + c)*2L + plane*L + l
  std::vector<double> x;           // i*2L + plane*L + l (one cell per unknown)
  std::vector<std::size_t> perm;   // i*L + l
};

AcBatch::AcBatch(const std::array<const Netlist*, kSimLanes>& nls,
                 const std::array<const DcResult*, kSimLanes>& ops)
    : impl_(new Impl) {
  Impl& im = *impl_;
  for (int l = 0; l < L; ++l) {
    if (nls[l] == nullptr || ops[l] == nullptr) continue;
    if (im.ref < 0) {
      im.ref = l;
    } else {
      assert(sameTopology(*nls[im.ref], *nls[l]));
    }
    im.active[l] = true;
    im.solvers[l] = std::make_unique<AcSolver>(*nls[l], *ops[l]);
  }
  assert(im.ref >= 0 && "AcBatch needs at least one active lane");
  im.n = im.solvers[im.ref]->gStamps().rows();
  const std::size_t groups =
      im.n * im.n * static_cast<std::size_t>(2 * L);
  im.gc.assign(groups, 0.0);
  im.lu.assign(groups, 0.0);
  im.x.assign(im.n * static_cast<std::size_t>(2 * L), 0.0);
  im.perm.assign(im.n * L, 0);
  for (int l = 0; l < L; ++l) {
    if (!im.active[l]) {
      // Inactive lanes hold a fixed identity (C plane zero) so the shared
      // factorization stays benign at any frequency.
      for (std::size_t i = 0; i < im.n; ++i)
        im.gc[(i * im.n + i) * 2 * L + l] = 1.0;
      continue;
    }
    const linalg::Matrix& g = im.solvers[l]->gStamps();
    const linalg::Matrix& c = im.solvers[l]->cStamps();
    for (std::size_t r = 0; r < im.n; ++r) {
      for (std::size_t cc = 0; cc < im.n; ++cc) {
        im.gc[(r * im.n + cc) * 2 * L + l] = g(r, cc);
        im.gc[(r * im.n + cc) * 2 * L + L + l] = c(r, cc);
      }
    }
  }
}

AcBatch::~AcBatch() = default;

void AcBatch::solveAt(double freqHz) {
  Impl& im = *impl_;
  const std::size_t n = im.n;
  const double w = 2.0 * std::numbers::pi * freqHz;
  constexpr std::size_t S = 2 * static_cast<std::size_t>(L);  // doubles/cell

  double* __restrict lup = im.lu.data();
  const double* __restrict gc = im.gc.data();
  // Stamped cell (r,c) is {g, w*c} (scalar assembly of A = G + jwC); w * 0.0
  // keeps inactive lanes' identity imaginary-free, and the real plane's
  // 1.0-multiply is an exact bitwise identity for every non-NaN double (NaN
  // lanes replay through the scalar solver, so payload quieting is
  // unobservable). The k = 0 elimination step below computes stamped values
  // on the fly straight from the G/C image — each cell's w-multiply happens
  // exactly once either way, so fusing only removes a full matrix write +
  // re-read, never a rounding step.
  const V8d w8 = simd::concat8(simd::splat4(1.0), simd::splat4(w));
  const V4d wv = simd::splat4(w);

  {
    SimPhaseTimer timer(SimPhase::kFactor);
    for (std::size_t i = 0; i < n; ++i)
      for (int l = 0; l < L; ++l) im.perm[i * L + l] = i;
    for (int l = 0; l < L; ++l) im.solveOk[l] = im.active[l];

    // Fused stamp + k = 0 step: pivot-search column 0 against on-the-fly
    // stamped magnitudes, and when every lane agrees on the pivot row (the
    // overwhelmingly common case for same-topology corner batches) perform
    // the first elimination step reading stamped values directly from gc,
    // writing the already-updated matrix into lu. Lanes that disagree fall
    // back to a whole-image stamp followed by the generic per-lane step.
    std::size_t kStart = 0;
    V4d bests = simd::abs4(simd::load4(gc)) +
                simd::abs4(wv * simd::load4(gc + L));
    V4i pivots = simd::splatI4(0);
    for (std::size_t r = 1; r < n; ++r) {
      const V4d m = simd::abs4(simd::load4(gc + (r * n) * S)) +
                    simd::abs4(wv * simd::load4(gc + (r * n) * S + L));
      const V4i better = m > bests;
      bests = simd::select4(better, m, bests);
      pivots = simd::selectI4(
          better, simd::splatI4(static_cast<std::int64_t>(r)), pivots);
    }
    const std::int64_t fp0 = pivots[0];
    if (pivots[1] == fp0 && pivots[2] == fp0 && pivots[3] == fp0) {
      for (int l = 0; l < L; ++l)
        if (im.solveOk[l] && bests[l] < 1e-300) im.solveOk[l] = false;
      const std::size_t p = static_cast<std::size_t>(fp0);
      if (p != 0)
        for (int l = 0; l < L; ++l) std::swap(im.perm[l], im.perm[p * L + l]);
      // Row 0 of the factor is the stamped source row p, verbatim.
      for (std::size_t c = 0; c < n; ++c)
        simd::store8(lup + c * S, simd::load8(gc + (p * n + c) * S) * w8);
      const V4d dre = simd::load4(lup);
      const V4d dim = simd::load4(lup + L);
      const V4d den = dre * dre + dim * dim;
      const V4d rcp = simd::splat4(1.0) / den;
      const V4d invRe = dre * rcp;
      const V4d invIm = -dim * rcp;
      for (std::size_t r = 1; r < n; ++r) {
        // Row r's source is row r, except the row displaced by the swap.
        const double* __restrict g = gc + ((r == p ? 0 : r) * n) * S;
        double* __restrict rowR = lup + (r * n) * S;
        const V4d ar = simd::load4(g);
        const V4d ai = wv * simd::load4(g + L);
        const V4d fRe = ar * invRe - ai * invIm;
        const V4d fIm = ar * invIm + ai * invRe;
        simd::store4(rowR, fRe);
        simd::store4(rowR + L, fIm);
        for (std::size_t c = 1; c < n; ++c) {
          const V4d sr = simd::load4(g + c * S);
          const V4d si = wv * simd::load4(g + c * S + L);
          const V4d kr = simd::load4(lup + c * S);
          const V4d ki = simd::load4(lup + c * S + L);
          simd::store4(rowR + c * S, sr - (fRe * kr - fIm * ki));
          simd::store4(rowR + c * S + L, si - (fRe * ki + fIm * kr));
        }
      }
      kStart = 1;
    } else {
      // Divergent pivots at k = 0: materialize the whole stamped image and
      // let the generic step redo the search against identical values.
      for (std::size_t i = 0; i < n * n; ++i)
        simd::store8(lup + i * S, simd::load8(gc + i * S) * w8);
    }

    for (std::size_t k = kStart; k < n; ++k) {
      // Pivot search: one 4-lane cabs1 (|re| + |im|, elementwise-exact) per
      // candidate row, with a strict-greater first-wins mask blend. Per lane
      // this performs the same comparisons in the same r order as the scalar
      // LuSolver, so the pivot choice (and every rounding after it) is
      // identical; dead lanes' magnitudes are computed but never consumed.
      V4d bests = simd::abs4(simd::load4(lup + (k * n + k) * S)) +
                  simd::abs4(simd::load4(lup + (k * n + k) * S + L));
      V4i pivots = simd::splatI4(static_cast<std::int64_t>(k));
      for (std::size_t r = k + 1; r < n; ++r) {
        const V4d m = simd::abs4(simd::load4(lup + (r * n + k) * S)) +
                      simd::abs4(simd::load4(lup + (r * n + k) * S + L));
        const V4i better = m > bests;
        bests = simd::select4(better, m, bests);
        pivots = simd::selectI4(
            better, simd::splatI4(static_cast<std::int64_t>(r)), pivots);
      }
      for (int l = 0; l < L; ++l)
        if (im.solveOk[l] && bests[l] < 1e-300)
          im.solveOk[l] = false;  // scalar solveSystem: nullopt -> zeros
      const std::int64_t p0 = pivots[0];
      if (pivots[1] == p0 && pivots[2] == p0 && pivots[3] == p0) {
        // Same-topology corner batches almost always agree on the pivot row:
        // swap whole cells instead of per-lane scalar strides. Pure data
        // movement, so the lane arithmetic is untouched; dead lanes ride
        // along unobservably (their solution is zeroed after the solve, and
        // the scalar path never reads their rows again).
        const std::size_t pivot = static_cast<std::size_t>(p0);
        if (pivot != k) {
          for (int l = 0; l < L; ++l)
            std::swap(im.perm[k * L + l], im.perm[pivot * L + l]);
          for (std::size_t c = 0; c < n; ++c) {
            const V8d a = simd::load8(lup + (k * n + c) * S);
            const V8d b = simd::load8(lup + (pivot * n + c) * S);
            simd::store8(lup + (k * n + c) * S, b);
            simd::store8(lup + (pivot * n + c) * S, a);
          }
        }
      } else {
        for (int l = 0; l < L; ++l) {
          if (!im.solveOk[l]) continue;
          const std::size_t pivot = static_cast<std::size_t>(pivots[l]);
          if (pivot != k) {
            std::swap(im.perm[k * L + l], im.perm[pivot * L + l]);
            for (std::size_t c = 0; c < n; ++c) {
              std::swap(lup[(k * n + c) * S + l], lup[(pivot * n + c) * S + l]);
              std::swap(lup[(k * n + c) * S + L + l],
                        lup[(pivot * n + c) * S + L + l]);
            }
          }
        }
      }
      // cxReciprocal of the diagonal, vectorized: the identical expression
      // sequence (d = re*re + im*im; id = 1/d; {re*id, -im*id}) per lane.
      const V4d dre = simd::load4(lup + (k * n + k) * S);
      const V4d dim = simd::load4(lup + (k * n + k) * S + L);
      const V4d den = dre * dre + dim * dim;
      const V4d rcp = simd::splat4(1.0) / den;
      const V4d invRe = dre * rcp;
      const V4d invIm = -dim * rcp;
      const double* __restrict rowK = lup + (k * n) * S;
      // Two-row blocking: rows r and r+1 share one load of the pivot row's
      // (kr, ki) per column. Each row still executes exactly its scalar
      // expression sequence — blocking only interleaves two independent
      // rows' updates, so the bitwise contract is untouched.
      std::size_t r = k + 1;
      for (; r + 1 < n; r += 2) {
        // Rows r, r+1 and k are pairwise disjoint slices, so restrict holds.
        double* __restrict rowR = lup + (r * n) * S;
        double* __restrict rowQ = lup + ((r + 1) * n) * S;
        const V4d ar0 = simd::load4(rowR + k * S);
        const V4d ai0 = simd::load4(rowR + k * S + L);
        const V4d ar1 = simd::load4(rowQ + k * S);
        const V4d ai1 = simd::load4(rowQ + k * S + L);
        const V4d fRe0 = ar0 * invRe - ai0 * invIm;
        const V4d fIm0 = ar0 * invIm + ai0 * invRe;
        const V4d fRe1 = ar1 * invRe - ai1 * invIm;
        const V4d fIm1 = ar1 * invIm + ai1 * invRe;
        simd::store4(rowR + k * S, fRe0);
        simd::store4(rowR + k * S + L, fIm0);
        simd::store4(rowQ + k * S, fRe1);
        simd::store4(rowQ + k * S + L, fIm1);
        for (std::size_t c = k + 1; c < n; ++c) {
          const V4d kr = simd::load4(rowK + c * S);
          const V4d ki = simd::load4(rowK + c * S + L);
          simd::store4(rowR + c * S,
                       simd::load4(rowR + c * S) - (fRe0 * kr - fIm0 * ki));
          simd::store4(rowR + c * S + L,
                       simd::load4(rowR + c * S + L) - (fRe0 * ki + fIm0 * kr));
          simd::store4(rowQ + c * S,
                       simd::load4(rowQ + c * S) - (fRe1 * kr - fIm1 * ki));
          simd::store4(rowQ + c * S + L,
                       simd::load4(rowQ + c * S + L) - (fRe1 * ki + fIm1 * kr));
        }
      }
      for (; r < n; ++r) {
        // Rows r and k are disjoint slices (r > k), so restrict holds.
        double* __restrict rowR = lup + (r * n) * S;
        const V4d ar = simd::load4(rowR + k * S);
        const V4d ai = simd::load4(rowR + k * S + L);
        const V4d fRe = ar * invRe - ai * invIm;
        const V4d fIm = ar * invIm + ai * invRe;
        simd::store4(rowR + k * S, fRe);
        simd::store4(rowR + k * S + L, fIm);
        for (std::size_t c = k + 1; c < n; ++c) {
          const V4d kr = simd::load4(rowK + c * S);
          const V4d ki = simd::load4(rowK + c * S + L);
          simd::store4(rowR + c * S,
                       simd::load4(rowR + c * S) - (fRe * kr - fIm * ki));
          simd::store4(rowR + c * S + L,
                       simd::load4(rowR + c * S + L) - (fRe * ki + fIm * kr));
        }
      }
    }
  }

  // Solve (per lane: LuSolver<complex>::solveInto with b = bReal + j0). The
  // solution vector shares the matrix's cell layout, so the triangular
  // accumulations run on whole cells: per term, t1/t2 hold the four scalar
  // products and the half-swaps only repackage lanes before the exact
  // scalar-order sub/add (re: mr*xr - mi*xi, im: mr*xi + mi*xr).
  SimPhaseTimer timer(SimPhase::kSolve);
  const double* bLane[L] = {};
  for (int l = 0; l < L; ++l)
    if (im.active[l]) bLane[l] = im.solvers[l]->acExcitation().data();
  double* __restrict x = im.x.data();
  for (std::size_t i = 0; i < n; ++i) {
    double init[L];
    for (int l = 0; l < L; ++l)
      init[l] = bLane[l] != nullptr ? bLane[l][im.perm[i * L + l]] : 0.0;
    V4d accRe = simd::load4(init);
    V4d accIm = simd::splat4(0.0);
    for (std::size_t j = 0; j < i; ++j) {
      const V4d mr = simd::load4(lup + (i * n + j) * S);
      const V4d mi = simd::load4(lup + (i * n + j) * S + L);
      const V4d xr = simd::load4(x + j * S);
      const V4d xi = simd::load4(x + j * S + L);
      accRe = accRe - (mr * xr - mi * xi);
      accIm = accIm - (mr * xi + mi * xr);
    }
    simd::store4(x + i * S, accRe);
    simd::store4(x + i * S + L, accIm);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    V4d accRe = simd::load4(x + ii * S);
    V4d accIm = simd::load4(x + ii * S + L);
    for (std::size_t j = ii + 1; j < n; ++j) {
      const V4d mr = simd::load4(lup + (ii * n + j) * S);
      const V4d mi = simd::load4(lup + (ii * n + j) * S + L);
      const V4d xr = simd::load4(x + j * S);
      const V4d xi = simd::load4(x + j * S + L);
      accRe = accRe - (mr * xr - mi * xi);
      accIm = accIm - (mr * xi + mi * xr);
    }
    const V4d dre = simd::load4(lup + (ii * n + ii) * S);
    const V4d dim = simd::load4(lup + (ii * n + ii) * S + L);
    const V4d den = dre * dre + dim * dim;
    const V4d rcp = simd::splat4(1.0) / den;
    const V4d invRe = dre * rcp;
    const V4d invIm = -dim * rcp;
    simd::store4(x + ii * S, accRe * invRe - accIm * invIm);
    simd::store4(x + ii * S + L, accRe * invIm + accIm * invRe);
  }

  // Singular lanes yield the scalar's zero solution; surviving lanes feed the
  // sticky finiteness check that gates the std::complex NaN-recovery redo.
  for (int l = 0; l < L; ++l) {
    if (!im.active[l]) continue;
    if (!im.solveOk[l]) {
      for (std::size_t i = 0; i < n; ++i) {
        im.x[i * S + l] = 0.0;
        im.x[i * S + L + l] = 0.0;
      }
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(im.x[i * S + l]) || !std::isfinite(im.x[i * S + L + l])) {
        im.finite[l] = false;
        break;
      }
    }
  }
}

std::complex<double> AcBatch::nodeVoltage(int lane, NodeId n) const {
  const Impl& im = *impl_;
  assert(lane >= 0 && lane < L && im.active[lane]);
  if (n == kGround) return {0.0, 0.0};
  const std::size_t i = im.solvers[lane]->netlist().nodeIndex(n);
  const std::size_t cell = i * static_cast<std::size_t>(2 * L);
  return {im.x[cell + lane], im.x[cell + L + lane]};
}

bool AcBatch::laneFinite(int lane) const {
  assert(lane >= 0 && lane < L);
  return impl_->finite[lane];
}

const AcSolver* AcBatch::laneSolver(int lane) const {
  assert(lane >= 0 && lane < L);
  return impl_->solvers[lane].get();
}

}  // namespace trdse::sim
