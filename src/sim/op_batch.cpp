// Batched operating-point engines. See op_batch.hpp for the lane-equivalence
// contract. Everything here replicates the scalar solvers' floating-point
// expressions literally, per lane, in the scalar stamp order; this TU is
// compiled with FP contraction off (see CMakeLists.txt) so the replicated
// expressions cannot fuse differently from the scalar TUs.
#include "sim/op_batch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

#include "linalg/cxmath.hpp"
#include "linalg/lu.hpp"
#include "sim/diode.hpp"

namespace trdse::sim {

namespace {

constexpr int L = kSimLanes;

// ---------------------------------------------------------------------------
// Lane-blocked dense MNA system: entry (r, c) of lane l lives at
// a[(r*n + c)*L + l], so the four lanes of one cell are contiguous and the
// elimination / stamp inner loops vectorize across lanes.
// ---------------------------------------------------------------------------
struct LaneSystem {
  std::size_t n = 0;
  std::vector<double> a;    // (r*n + c)*L + l
  std::vector<double> rhs;  // i*L + l

  void reset(std::size_t dim) {
    n = dim;
    a.assign(n * n * static_cast<std::size_t>(L), 0.0);
    rhs.assign(n * static_cast<std::size_t>(L), 0.0);
  }
  void zero() {
    std::fill(a.begin(), a.end(), 0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);
  }
  double& at(std::size_t r, std::size_t c, int l) {
    return a[(r * n + c) * L + static_cast<std::size_t>(l)];
  }
  double& rv(std::size_t i, int l) {
    return rhs[i * L + static_cast<std::size_t>(l)];
  }
};

/// Lanes that are frozen, dead, or unused still go through the shared LU, so
/// give them a benign identity system (diag 1, rhs 0): factoring stays finite
/// and their solve output is all zeros (and discarded).
void clearLaneToIdentity(LaneSystem& sys, int l) {
  for (std::size_t r = 0; r < sys.n; ++r)
    for (std::size_t c = 0; c < sys.n; ++c) sys.at(r, c, l) = (r == c) ? 1.0 : 0.0;
  for (std::size_t i = 0; i < sys.n; ++i) sys.rv(i, l) = 0.0;
}

// Per-lane stamp helpers mirroring the scalar solvers' stampG/stampI/addAt
// (same ground skips, same += order).
void stampG(LaneSystem& sys, const Netlist& nl, int l, NodeId a, NodeId b,
            double g) {
  if (a != kGround) {
    const std::size_t ia = nl.nodeIndex(a);
    sys.at(ia, ia, l) += g;
    if (b != kGround) sys.at(ia, nl.nodeIndex(b), l) -= g;
  }
  if (b != kGround) {
    const std::size_t ib = nl.nodeIndex(b);
    sys.at(ib, ib, l) += g;
    if (a != kGround) sys.at(ib, nl.nodeIndex(a), l) -= g;
  }
}

void stampI(LaneSystem& sys, const Netlist& nl, int l, NodeId a, NodeId b,
            double i) {
  if (a != kGround) sys.rv(nl.nodeIndex(a), l) -= i;
  if (b != kGround) sys.rv(nl.nodeIndex(b), l) += i;
}

/// stampI into a bare lane-blocked vector (the transient per-step RHS).
void stampIVec(std::vector<double>& rhsB, const Netlist& nl, int l, NodeId a,
               NodeId b, double i) {
  if (a != kGround) rhsB[nl.nodeIndex(a) * L + static_cast<std::size_t>(l)] -= i;
  if (b != kGround) rhsB[nl.nodeIndex(b) * L + static_cast<std::size_t>(l)] += i;
}

void addAt(LaneSystem& sys, const Netlist& nl, int l, NodeId r, NodeId cNode,
           double c) {
  if (r == kGround || cNode == kGround) return;
  sys.at(nl.nodeIndex(r), nl.nodeIndex(cNode), l) += c;
}

// ---------------------------------------------------------------------------
// Lane-blocked real LU. Pivot choice and row swaps are per lane (identical to
// the scalar LuSolver's partial pivoting, decided on the lane's own values);
// the elimination arithmetic runs vectorized across the lane dimension, which
// per lane is the exact op sequence scalar factor() performs.
// ---------------------------------------------------------------------------
struct LaneLu {
  std::size_t n = 0;
  std::vector<double> lu;           // (r*n + c)*L + l
  std::vector<std::size_t> perm;    // i*L + l
  bool ok[L] = {};                  // per-lane "factored and nonsingular"

  void factor(const LaneSystem& sys, const bool* want) {
    n = sys.n;
    lu.assign(sys.a.begin(), sys.a.end());
    perm.resize(n * L);
    for (std::size_t i = 0; i < n; ++i)
      for (int l = 0; l < L; ++l) perm[i * L + l] = i;
    for (int l = 0; l < L; ++l) ok[l] = want[l];

    for (std::size_t k = 0; k < n; ++k) {
      // Per-lane partial pivoting: largest magnitude in column k. The scan
      // runs with the lane loop innermost so the compare/blend vectorizes;
      // per lane the selection (strict >, first maximum wins) is identical
      // to the scalar solver's scan. Dead lanes scan garbage harmlessly.
      double best[L];
      int pivotRow[L];
      for (int l = 0; l < L; ++l) {
        best[l] = std::abs(lu[(k * n + k) * L + l]);
        pivotRow[l] = static_cast<int>(k);
      }
      for (std::size_t r = k + 1; r < n; ++r) {
        for (int l = 0; l < L; ++l) {
          const double m = std::abs(lu[(r * n + k) * L + l]);
          const bool better = m > best[l];
          best[l] = better ? m : best[l];
          pivotRow[l] = better ? static_cast<int>(r) : pivotRow[l];
        }
      }
      for (int l = 0; l < L; ++l) {
        if (!ok[l]) continue;
        if (best[l] < 1e-300) {  // numerically singular (this lane only)
          ok[l] = false;
          continue;
        }
        const std::size_t pivot = static_cast<std::size_t>(pivotRow[l]);
        if (pivot != k) {
          std::swap(perm[k * L + l], perm[pivot * L + l]);
          for (std::size_t c = 0; c < n; ++c)
            std::swap(lu[(k * n + c) * L + l], lu[(pivot * n + c) * L + l]);
        }
      }
      // Vectorized elimination. Lanes flagged !ok may compute garbage
      // (inf/NaN) here; their results are never read. rowR and rowK address
      // disjoint rows (r > k), so __restrict is legal and spares the
      // vectorizer its runtime aliasing checks.
      const double* __restrict rowK = &lu[(k * n) * L];
      for (std::size_t r = k + 1; r < n; ++r) {
        double* __restrict rowR = &lu[(r * n) * L];
        double f[L];
        for (int l = 0; l < L; ++l) f[l] = rowR[k * L + l] / rowK[k * L + l];
        for (int l = 0; l < L; ++l) rowR[k * L + l] = f[l];
        for (std::size_t c = k + 1; c < n; ++c)
          for (int l = 0; l < L; ++l) rowR[c * L + l] -= f[l] * rowK[c * L + l];
      }
    }
  }

  /// Per lane this is exactly LuSolver<double>::solveInto. `bB` must not
  /// alias `xB` (callers pass the system RHS and a separate solution buffer);
  /// the __restrict'ed raw pointers let the short inner lane loops vectorize
  /// without per-loop runtime aliasing checks.
  void solve(const std::vector<double>& bB, std::vector<double>& xB) const {
    xB.resize(n * L);
    const double* __restrict lup = lu.data();
    const double* __restrict b = bB.data();
    double* __restrict x = xB.data();
    const std::size_t* __restrict pp = perm.data();
    for (std::size_t i = 0; i < n; ++i) {
      double acc[L];
      for (int l = 0; l < L; ++l) acc[l] = b[pp[i * L + l] * L + l];
      for (std::size_t j = 0; j < i; ++j)
        for (int l = 0; l < L; ++l) acc[l] -= lup[(i * n + j) * L + l] * x[j * L + l];
      for (int l = 0; l < L; ++l) x[i * L + l] = acc[l];
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double acc[L];
      for (int l = 0; l < L; ++l) acc[l] = x[ii * L + l];
      for (std::size_t j = ii + 1; j < n; ++j)
        for (int l = 0; l < L; ++l) acc[l] -= lup[(ii * n + j) * L + l] * x[j * L + l];
      for (int l = 0; l < L; ++l)
        x[ii * L + l] = acc[l] / lup[(ii * n + ii) * L + l];
    }
  }
};

// ---------------------------------------------------------------------------
// Per-device AoSoA contexts + per-round operating-point blocks. Lanes whose
// netlist pointer is null copy the reference lane's context (their outputs
// are never read, but the kernels must not see indeterminate inputs).
// ---------------------------------------------------------------------------
struct DeviceBlocks {
  std::vector<MosCtxBlock> mosCtx;
  std::vector<MosOpBlock> mosOp;
  std::vector<DiodeCtxBlock> dioCtx;
  std::vector<DiodeOpBlock> dioOp;
};

void buildDeviceBlocks(const std::array<const Netlist*, kSimLanes>& nls, int ref,
                       DeviceBlocks& db) {
  const Netlist& rnl = *nls[ref];
  db.mosCtx.resize(rnl.mosfets().size());
  db.mosOp.resize(rnl.mosfets().size());
  for (std::size_t k = 0; k < rnl.mosfets().size(); ++k) {
    for (int l = 0; l < L; ++l) {
      const Netlist& nl = nls[l] != nullptr ? *nls[l] : rnl;
      const auto& fet = nl.mosfets()[k];
      const MosDeviceCtx c = makeMosCtx(fet.params, fet.type, fet.geom, nl.tempK);
      db.mosCtx[k].sign[l] = c.sign;
      db.mosCtx[k].vt[l] = c.vt;
      db.mosCtx[k].n[l] = c.n;
      db.mosCtx[k].ispec[l] = c.ispec;
      db.mosCtx[k].sq0[l] = c.sq0;
      db.mosCtx[k].lambda[l] = c.lambda;
      db.mosCtx[k].vth0[l] = c.vth0;
      db.mosCtx[k].gamma[l] = c.gamma;
      db.mosCtx[k].phi[l] = c.phi;
    }
  }
  db.dioCtx.resize(rnl.diodes().size());
  db.dioOp.resize(rnl.diodes().size());
  for (std::size_t k = 0; k < rnl.diodes().size(); ++k) {
    for (int l = 0; l < L; ++l) {
      const Netlist& nl = nls[l] != nullptr ? *nls[l] : rnl;
      const auto& d = nl.diodes()[k];
      db.dioCtx[k].isat[l] = d.isat;
      // Same expression evalDiode uses; contraction is off in both TUs.
      db.dioCtx[k].vt[l] = thermalVoltage(nl.tempK) * d.emission;
    }
  }
}

/// One lockstep round of device-card evaluation at each lane's current
/// voltages. Lanes with a null vector gather 0.0 (benign inputs; the outputs
/// of those lanes are discarded) — a dead lane's last iterate may hold
/// non-finite values the kernels must never see.
void evalDeviceBlocks(const Netlist& rnl, DeviceBlocks& db,
                      const std::array<const linalg::Vector*, kSimLanes>& v) {
  for (std::size_t k = 0; k < rnl.mosfets().size(); ++k) {
    const auto& fet = rnl.mosfets()[k];
    double vd[L], vg[L], vs[L], vb[L];
    for (int l = 0; l < L; ++l) {
      if (v[l] != nullptr) {
        vd[l] = (*v[l])[static_cast<std::size_t>(fet.d)];
        vg[l] = (*v[l])[static_cast<std::size_t>(fet.g)];
        vs[l] = (*v[l])[static_cast<std::size_t>(fet.s)];
        vb[l] = (*v[l])[static_cast<std::size_t>(fet.b)];
      } else {
        vd[l] = vg[l] = vs[l] = vb[l] = 0.0;
      }
    }
    evalMosBlock(db.mosCtx[k], vd, vg, vs, vb, db.mosOp[k]);
  }
  for (std::size_t k = 0; k < rnl.diodes().size(); ++k) {
    const auto& d = rnl.diodes()[k];
    double vak[L];
    for (int l = 0; l < L; ++l) {
      vak[l] = v[l] != nullptr ? (*v[l])[static_cast<std::size_t>(d.a)] -
                                     (*v[l])[static_cast<std::size_t>(d.k)]
                               : 0.0;
    }
    evalDiodeBlock(db.dioCtx[k], vak, db.dioOp[k]);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// sameTopology
// ---------------------------------------------------------------------------
bool sameTopology(const Netlist& a, const Netlist& b) {
  if (a.nodeCount() != b.nodeCount()) return false;
  if (a.resistors().size() != b.resistors().size() ||
      a.capacitors().size() != b.capacitors().size() ||
      a.vsources().size() != b.vsources().size() ||
      a.isources().size() != b.isources().size() ||
      a.vcvs().size() != b.vcvs().size() || a.vccs().size() != b.vccs().size() ||
      a.diodes().size() != b.diodes().size() ||
      a.inductors().size() != b.inductors().size() ||
      a.mosfets().size() != b.mosfets().size())
    return false;
  for (std::size_t i = 0; i < a.resistors().size(); ++i)
    if (a.resistors()[i].a != b.resistors()[i].a ||
        a.resistors()[i].b != b.resistors()[i].b)
      return false;
  for (std::size_t i = 0; i < a.capacitors().size(); ++i)
    if (a.capacitors()[i].a != b.capacitors()[i].a ||
        a.capacitors()[i].b != b.capacitors()[i].b)
      return false;
  for (std::size_t i = 0; i < a.vsources().size(); ++i)
    if (a.vsources()[i].p != b.vsources()[i].p ||
        a.vsources()[i].n != b.vsources()[i].n)
      return false;
  for (std::size_t i = 0; i < a.isources().size(); ++i)
    if (a.isources()[i].p != b.isources()[i].p ||
        a.isources()[i].n != b.isources()[i].n)
      return false;
  for (std::size_t i = 0; i < a.vcvs().size(); ++i)
    if (a.vcvs()[i].p != b.vcvs()[i].p || a.vcvs()[i].n != b.vcvs()[i].n ||
        a.vcvs()[i].cp != b.vcvs()[i].cp || a.vcvs()[i].cn != b.vcvs()[i].cn)
      return false;
  for (std::size_t i = 0; i < a.vccs().size(); ++i)
    if (a.vccs()[i].p != b.vccs()[i].p || a.vccs()[i].n != b.vccs()[i].n ||
        a.vccs()[i].cp != b.vccs()[i].cp || a.vccs()[i].cn != b.vccs()[i].cn)
      return false;
  for (std::size_t i = 0; i < a.diodes().size(); ++i)
    if (a.diodes()[i].a != b.diodes()[i].a || a.diodes()[i].k != b.diodes()[i].k)
      return false;
  for (std::size_t i = 0; i < a.inductors().size(); ++i)
    if (a.inductors()[i].a != b.inductors()[i].a ||
        a.inductors()[i].b != b.inductors()[i].b)
      return false;
  for (std::size_t i = 0; i < a.mosfets().size(); ++i)
    if (a.mosfets()[i].d != b.mosfets()[i].d ||
        a.mosfets()[i].g != b.mosfets()[i].g ||
        a.mosfets()[i].s != b.mosfets()[i].s ||
        a.mosfets()[i].b != b.mosfets()[i].b)
      return false;
  return true;
}

// ---------------------------------------------------------------------------
// Batched DC
// ---------------------------------------------------------------------------
namespace {

// DcSolver::solve's fallback ladder, phase-encoded:
//   0        plain Newton from the guess
//   1..9     gmin stepping (kGminLadder), warm-started
//   10       retry at opts.gmin from the gmin-ladder warm vector (terminal on
//            convergence)
//   11..19   source stepping (kSrcLadder) at gmin = 1e-9
//   20       final attempt at opts.gmin (terminal regardless)
constexpr double kGminLadder[9] = {1e-3, 1e-4, 1e-5, 1e-6, 1e-7,
                                   1e-8, 1e-9, 1e-10, 1e-11};
constexpr double kSrcLadder[9] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

struct DcLane {
  bool active = false;
  bool done = false;
  int phase = 0;
  int iter = 0;        ///< completed iterations of the current loop
  int iterations = 0;  ///< scalar result.iterations bookkeeping
  double gmin = 0.0;
  double srcScale = 1.0;
  linalg::Vector v;     ///< current iterate (scalar result.v)
  linalg::Vector v0;    ///< original guess
  linalg::Vector warm;  ///< warm-start carry between ladder loops
  std::vector<double> xSave;  ///< solution column of the converged iteration
  DcResult result;
};

void dcEndLoop(DcLane& ln, bool converged, const Netlist& nl,
               const DcOptions& opts);

void dcStartLoop(DcLane& ln, const linalg::Vector& start, double gmin,
                 double srcScale, const Netlist& nl, const DcOptions& opts) {
  ln.v = start;
  ln.gmin = gmin;
  ln.srcScale = srcScale;
  ln.iter = 0;
  ln.iterations = 0;
  if (opts.maxIterations <= 0) dcEndLoop(ln, false, nl, opts);
}

/// Converged terminal loop: same finalization newtonLoop performs, through
/// the same scalar device kernels.
void dcFinalize(DcLane& ln, const Netlist& nl) {
  DcResult& r = ln.result;
  r.converged = true;
  r.iterations = ln.iterations;
  r.v = ln.v;
  r.branchCurrents.assign(nl.branchCount(), 0.0);
  for (std::size_t k = 0; k < nl.branchCount(); ++k)
    r.branchCurrents[k] = ln.xSave[nl.nodeCount() - 1 + k];
  r.diodeConductances.resize(nl.diodes().size());
  for (std::size_t k = 0; k < nl.diodes().size(); ++k) {
    const auto& d = nl.diodes()[k];
    const double vak =
        r.v[static_cast<std::size_t>(d.a)] - r.v[static_cast<std::size_t>(d.k)];
    r.diodeConductances[k] = evalDiode(d, vak, nl.tempK).gd;
  }
  r.mosOps.resize(nl.mosfets().size());
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& fet = nl.mosfets()[k];
    r.mosOps[k] = evalMos(fet.params, fet.type, fet.geom,
                          r.v[static_cast<std::size_t>(fet.d)],
                          r.v[static_cast<std::size_t>(fet.g)],
                          r.v[static_cast<std::size_t>(fet.s)],
                          r.v[static_cast<std::size_t>(fet.b)], nl.tempK);
  }
  ln.done = true;
}

void dcEndLoop(DcLane& ln, bool converged, const Netlist& nl,
               const DcOptions& opts) {
  if (ln.phase == 0) {
    if (converged) {
      dcFinalize(ln, nl);
      return;
    }
    ln.warm = ln.v0;
    ln.phase = 1;
    dcStartLoop(ln, ln.warm, kGminLadder[0], 1.0, nl, opts);
  } else if (ln.phase >= 1 && ln.phase <= 9) {
    if (converged) ln.warm = ln.v;
    if (ln.phase < 9) {
      ++ln.phase;
      dcStartLoop(ln, ln.warm, kGminLadder[ln.phase - 1], 1.0, nl, opts);
    } else {
      ln.phase = 10;
      dcStartLoop(ln, ln.warm, opts.gmin, 1.0, nl, opts);
    }
  } else if (ln.phase == 10) {
    if (converged) {
      dcFinalize(ln, nl);
      return;
    }
    ln.warm = ln.v0;
    ln.phase = 11;
    dcStartLoop(ln, ln.warm, 1e-9, kSrcLadder[0], nl, opts);
  } else if (ln.phase >= 11 && ln.phase <= 19) {
    if (converged) ln.warm = ln.v;
    if (ln.phase < 19) {
      ++ln.phase;
      dcStartLoop(ln, ln.warm, 1e-9, kSrcLadder[ln.phase - 11], nl, opts);
    } else {
      ln.phase = 20;
      dcStartLoop(ln, ln.warm, opts.gmin, 1.0, nl, opts);
    }
  } else {  // phase 20: terminal regardless
    if (converged) {
      dcFinalize(ln, nl);
      return;
    }
    ln.result.converged = false;
    ln.result.iterations = ln.iterations;
    ln.result.v = ln.v;
    ln.done = true;
  }
}

/// One lane's full matrix + RHS for one Newton iteration, in newtonLoop's
/// exact stamp order, with the diode/MOS operating points taken from the
/// shared block evaluation of this round.
void stampDcLane(LaneSystem& sys, const Netlist& nl, int l, const DcLane& ln,
                 const DeviceBlocks& db) {
  for (const auto& r : nl.resistors()) stampG(sys, nl, l, r.a, r.b, 1.0 / r.ohms);
  for (std::size_t i = 1; i < nl.nodeCount(); ++i) {
    const std::size_t d = nl.nodeIndex(static_cast<NodeId>(i));
    sys.at(d, d, l) += ln.gmin;
  }
  for (const auto& src : nl.isources())
    stampI(sys, nl, l, src.p, src.n, src.idc * ln.srcScale);
  for (const auto& g : nl.vccs()) {
    addAt(sys, nl, l, g.p, g.cp, g.gm);
    addAt(sys, nl, l, g.p, g.cn, -g.gm);
    addAt(sys, nl, l, g.n, g.cp, -g.gm);
    addAt(sys, nl, l, g.n, g.cn, g.gm);
  }
  for (std::size_t k = 0; k < nl.diodes().size(); ++k) {
    const auto& d = nl.diodes()[k];
    const double vak =
        ln.v[static_cast<std::size_t>(d.a)] - ln.v[static_cast<std::size_t>(d.k)];
    const double gd = db.dioOp[k].gd[l];
    const double id = db.dioOp[k].id[l];
    stampG(sys, nl, l, d.a, d.k, gd);
    stampI(sys, nl, l, d.a, d.k, id - gd * vak);
  }
  for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
    const auto& ind = nl.inductors()[k];
    const std::size_t br = nl.inductorBranchIndex(k);
    if (ind.a != kGround) {
      sys.at(nl.nodeIndex(ind.a), br, l) += 1.0;
      sys.at(br, nl.nodeIndex(ind.a), l) += 1.0;
    }
    if (ind.b != kGround) {
      sys.at(nl.nodeIndex(ind.b), br, l) -= 1.0;
      sys.at(br, nl.nodeIndex(ind.b), l) -= 1.0;
    }
  }
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& fet = nl.mosfets()[k];
    const double vd = ln.v[static_cast<std::size_t>(fet.d)];
    const double vg = ln.v[static_cast<std::size_t>(fet.g)];
    const double vs = ln.v[static_cast<std::size_t>(fet.s)];
    const double vb = ln.v[static_cast<std::size_t>(fet.b)];
    const MosOpBlock& op = db.mosOp[k];
    addAt(sys, nl, l, fet.d, fet.d, op.dIdVd[l]);
    addAt(sys, nl, l, fet.d, fet.g, op.dIdVg[l]);
    addAt(sys, nl, l, fet.d, fet.s, op.dIdVs[l]);
    addAt(sys, nl, l, fet.d, fet.b, op.dIdVb[l]);
    addAt(sys, nl, l, fet.s, fet.d, -op.dIdVd[l]);
    addAt(sys, nl, l, fet.s, fet.g, -op.dIdVg[l]);
    addAt(sys, nl, l, fet.s, fet.s, -op.dIdVs[l]);
    addAt(sys, nl, l, fet.s, fet.b, -op.dIdVb[l]);
    const double ieq = op.ids[l] - op.dIdVd[l] * vd - op.dIdVg[l] * vg -
                       op.dIdVs[l] * vs - op.dIdVb[l] * vb;
    stampI(sys, nl, l, fet.d, fet.s, ieq);
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const std::size_t br = nl.vsourceBranchIndex(k);
    if (src.p != kGround) {
      sys.at(nl.nodeIndex(src.p), br, l) += 1.0;
      sys.at(br, nl.nodeIndex(src.p), l) += 1.0;
    }
    if (src.n != kGround) {
      sys.at(nl.nodeIndex(src.n), br, l) -= 1.0;
      sys.at(br, nl.nodeIndex(src.n), l) -= 1.0;
    }
    sys.rv(br, l) = src.vdc * ln.srcScale;
  }
  for (std::size_t k = 0; k < nl.vcvs().size(); ++k) {
    const auto& e = nl.vcvs()[k];
    const std::size_t br = nl.vcvsBranchIndex(k);
    if (e.p != kGround) {
      sys.at(nl.nodeIndex(e.p), br, l) += 1.0;
      sys.at(br, nl.nodeIndex(e.p), l) += 1.0;
    }
    if (e.n != kGround) {
      sys.at(nl.nodeIndex(e.n), br, l) -= 1.0;
      sys.at(br, nl.nodeIndex(e.n), l) -= 1.0;
    }
    if (e.cp != kGround) sys.at(br, nl.nodeIndex(e.cp), l) -= e.gain;
    if (e.cn != kGround) sys.at(br, nl.nodeIndex(e.cn), l) += e.gain;
  }
}

}  // namespace

std::array<DcResult, kSimLanes> solveDcBatch(
    const std::array<const Netlist*, kSimLanes>& nls,
    const std::array<const linalg::Vector*, kSimLanes>& guesses,
    const DcOptions& opts) {
  std::array<DcResult, kSimLanes> out;
  int ref = -1;
  for (int l = 0; l < L; ++l)
    if (nls[l] != nullptr && ref < 0) ref = l;
  if (ref < 0) return out;
  const Netlist& rnl = *nls[ref];
  const std::size_t n = rnl.unknownCount();
  const std::size_t nodes = rnl.nodeCount();

  DeviceBlocks db;
  buildDeviceBlocks(nls, ref, db);

  std::array<DcLane, L> lanes;
  for (int l = 0; l < L; ++l) {
    if (nls[l] == nullptr) continue;
    assert(sameTopology(rnl, *nls[l]));
    DcLane& ln = lanes[l];
    ln.active = true;
    if (guesses[l] != nullptr && guesses[l]->size() == nodes) {
      ln.v0 = *guesses[l];
    } else {
      ln.v0.assign(nodes, 0.0);
    }
    dcStartLoop(ln, ln.v0, opts.gmin, 1.0, *nls[l], opts);
  }

  LaneSystem sys;
  sys.reset(n);
  LaneLu lu;
  std::vector<double> xB(n * L, 0.0);

  auto anyLive = [&lanes]() {
    for (const DcLane& ln : lanes)
      if (ln.active && !ln.done) return true;
    return false;
  };

  while (anyLive()) {
    std::array<const linalg::Vector*, L> vl{};
    bool live[L] = {};
    for (int l = 0; l < L; ++l) {
      if (lanes[l].active && !lanes[l].done) {
        live[l] = true;
        vl[l] = &lanes[l].v;
      }
    }
    evalDeviceBlocks(rnl, db, vl);
    sys.zero();
    for (int l = 0; l < L; ++l) {
      if (live[l]) {
        stampDcLane(sys, *nls[l], l, lanes[l], db);
      } else {
        clearLaneToIdentity(sys, l);
      }
    }
    lu.factor(sys, live);
    lu.solve(sys.rhs, xB);
    for (int l = 0; l < L; ++l) {
      if (!live[l]) continue;
      DcLane& ln = lanes[l];
      const Netlist& nl = *nls[l];
      if (!lu.ok[l]) {
        ln.iterations = ln.iter;  // scalar: result.iterations = iter on singular
        dcEndLoop(ln, false, nl, opts);
        continue;
      }
      double maxStep = 0.0;
      for (std::size_t i = 1; i < nodes; ++i) {
        const double vNew = xB[(i - 1) * L + l];
        const double dv = vNew - ln.v[i];
        maxStep = std::max(maxStep, std::abs(dv));
        ln.v[i] += std::clamp(dv, -opts.damping, opts.damping);
      }
      ln.iterations = ln.iter + 1;
      ++ln.iter;
      const double vScale = linalg::normInf(ln.v);
      if (maxStep < opts.tolAbs + opts.tolRel * vScale) {
        ln.xSave.resize(n);
        for (std::size_t j = 0; j < n; ++j) ln.xSave[j] = xB[j * L + l];
        dcEndLoop(ln, true, nl, opts);
      } else if (ln.iter >= opts.maxIterations) {
        dcEndLoop(ln, false, nl, opts);
      }
    }
  }

  for (int l = 0; l < L; ++l)
    if (lanes[l].active) out[l] = std::move(lanes[l].result);
  return out;
}

// ---------------------------------------------------------------------------
// Batched transient
// ---------------------------------------------------------------------------
namespace {

// Companion states, one set per lane, in TransientSolver::run's collection
// order (explicit capacitors first, then per-MOSFET parasitics).
struct BatchCapState {
  NodeId a = kGround;
  NodeId b = kGround;
  double c = 0.0;
  double vPrev = 0.0;
  double iPrev = 0.0;
};

struct BatchIndState {
  double iPrev = 0.0;
  double vPrev = 0.0;
};

// Precomputed flat matrix/rhs indices for the per-round nonlinear stamps
// (topology is identical across lanes, so one set serves all four). A -1
// marks a ground-suppressed entry the scalar stampers skip.
struct MosStampIdx {
  int cell[8];      // (d,d) (d,g) (d,s) (d,b) (s,d) (s,g) (s,s) (s,b)
  int rhsD, rhsS;   // ieq rows
  NodeId d, g, s, b;
};

struct DiodeStampIdx {
  int cell[4];      // (a,a) (a,k) (k,k) (k,a)
  int rhsA, rhsK;
  NodeId a, k;
};

int flatCell(const Netlist& nl, std::size_t n, NodeId r, NodeId c) {
  if (r == kGround || c == kGround) return -1;
  return static_cast<int>(nl.nodeIndex(r) * n + nl.nodeIndex(c));
}

int rhsRow(const Netlist& nl, NodeId a) {
  return a == kGround ? -1 : static_cast<int>(nl.nodeIndex(a));
}

void buildStampIndices(const Netlist& nl, std::size_t n,
                       std::vector<MosStampIdx>& mosIdx,
                       std::vector<DiodeStampIdx>& dioIdx) {
  mosIdx.resize(nl.mosfets().size());
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& fet = nl.mosfets()[k];
    MosStampIdx& ix = mosIdx[k];
    const NodeId nodes[8][2] = {{fet.d, fet.d}, {fet.d, fet.g}, {fet.d, fet.s},
                                {fet.d, fet.b}, {fet.s, fet.d}, {fet.s, fet.g},
                                {fet.s, fet.s}, {fet.s, fet.b}};
    for (int e = 0; e < 8; ++e) ix.cell[e] = flatCell(nl, n, nodes[e][0], nodes[e][1]);
    ix.rhsD = rhsRow(nl, fet.d);
    ix.rhsS = rhsRow(nl, fet.s);
    ix.d = fet.d;
    ix.g = fet.g;
    ix.s = fet.s;
    ix.b = fet.b;
  }
  dioIdx.resize(nl.diodes().size());
  for (std::size_t k = 0; k < nl.diodes().size(); ++k) {
    const auto& d = nl.diodes()[k];
    DiodeStampIdx& ix = dioIdx[k];
    ix.cell[0] = flatCell(nl, n, d.a, d.a);
    ix.cell[1] = flatCell(nl, n, d.a, d.k);
    ix.cell[2] = flatCell(nl, n, d.k, d.k);
    ix.cell[3] = flatCell(nl, n, d.k, d.a);
    ix.rhsA = rhsRow(nl, d.a);
    ix.rhsK = rhsRow(nl, d.k);
    ix.a = d.a;
    ix.k = d.k;
  }
}

/// Lane l's step-invariant (linear) matrix part: resistors, gmin, VCCS,
/// inductor/vsource/vcvs branch rows, capacitor companion conductances. The
/// per-cell accumulation order matches the scalar per-iteration stamping
/// (the nonlinear diode/MOS stamps are added on a copy each Newton round).
void stampTransientBase(LaneSystem& base, const Netlist& nl, int l,
                        const std::vector<BatchCapState>& caps, double h) {
  for (const auto& r : nl.resistors()) stampG(base, nl, l, r.a, r.b, 1.0 / r.ohms);
  for (std::size_t i = 1; i < nl.nodeCount(); ++i)
    base.at(i - 1, i - 1, l) += 1e-12;  // gmin
  for (const auto& g : nl.vccs()) {
    addAt(base, nl, l, g.p, g.cp, g.gm);
    addAt(base, nl, l, g.p, g.cn, -g.gm);
    addAt(base, nl, l, g.n, g.cp, -g.gm);
    addAt(base, nl, l, g.n, g.cn, g.gm);
  }
  for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
    const auto& ind = nl.inductors()[k];
    const std::size_t br = nl.inductorBranchIndex(k);
    if (ind.a != kGround) {
      base.at(nl.nodeIndex(ind.a), br, l) += 1.0;
      base.at(br, nl.nodeIndex(ind.a), l) += 1.0;
    }
    if (ind.b != kGround) {
      base.at(nl.nodeIndex(ind.b), br, l) -= 1.0;
      base.at(br, nl.nodeIndex(ind.b), l) -= 1.0;
    }
    const double zeq = 2.0 * ind.henry / h;
    base.at(br, br, l) -= zeq;
  }
  for (const auto& cs : caps) {
    const double geq = 2.0 * cs.c / h;
    stampG(base, nl, l, cs.a, cs.b, geq);
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const std::size_t br = nl.vsourceBranchIndex(k);
    if (src.p != kGround) {
      base.at(nl.nodeIndex(src.p), br, l) += 1.0;
      base.at(br, nl.nodeIndex(src.p), l) += 1.0;
    }
    if (src.n != kGround) {
      base.at(nl.nodeIndex(src.n), br, l) -= 1.0;
      base.at(br, nl.nodeIndex(src.n), l) -= 1.0;
    }
  }
  for (std::size_t k = 0; k < nl.vcvs().size(); ++k) {
    const auto& e = nl.vcvs()[k];
    const std::size_t br = nl.vcvsBranchIndex(k);
    if (e.p != kGround) {
      base.at(nl.nodeIndex(e.p), br, l) += 1.0;
      base.at(br, nl.nodeIndex(e.p), l) += 1.0;
    }
    if (e.n != kGround) {
      base.at(nl.nodeIndex(e.n), br, l) -= 1.0;
      base.at(br, nl.nodeIndex(e.n), l) -= 1.0;
    }
    if (e.cp != kGround) base.at(br, nl.nodeIndex(e.cp), l) -= e.gain;
    if (e.cn != kGround) base.at(br, nl.nodeIndex(e.cn), l) += e.gain;
  }
}

}  // namespace

struct TransientBatch::Impl {
  std::array<const Netlist*, L> nls{};
  TransientOptions opts;
  int ref = -1;
  std::size_t n = 0;
  std::size_t nodes = 0;
  std::size_t nBranches = 0;
  std::size_t totalSteps = 0;
  std::size_t done = 0;
  bool active[L] = {};
  bool alive[L] = {};  ///< still recording (no singular matrix / Newton fail)
  std::array<TransientResult, L> results;
  std::array<linalg::Vector, L> v;      ///< last accepted node voltages
  std::array<linalg::Vector, L> vIter;  ///< Newton iterate scratch
  std::array<std::vector<BatchCapState>, L> caps;
  std::array<std::vector<BatchIndState>, L> inds;
  std::array<std::vector<double>, L> xSave;  ///< converged-round solution
  std::vector<MosStampIdx> mosIdx;
  std::vector<DiodeStampIdx> dioIdx;
  DeviceBlocks db;
  LaneSystem base;  ///< linear matrix part (rhs member unused)
  LaneSystem work;
  std::vector<double> stepRhs;
  LaneLu lu;
  std::vector<double> xB;

  void doStep(std::size_t stepIndex);
};

void TransientBatch::Impl::doStep(std::size_t stepIndex) {
  const Netlist& rnl = *nls[ref];
  const double h = opts.dt;

  // Per-step RHS: sources + linear companion currents. Node entries
  // accumulate as isources then capacitors — the scalar per-iteration order
  // with the nonlinear (diode/MOS) contributions appended per round below.
  std::fill(stepRhs.begin(), stepRhs.end(), 0.0);
  for (int l = 0; l < L; ++l) {
    if (!alive[l]) continue;
    const Netlist& nl = *nls[l];
    for (const auto& src : nl.isources())
      stampIVec(stepRhs, nl, l, src.p, src.n, src.idc);
    for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
      const auto& ind = nl.inductors()[k];
      const double zeq = 2.0 * ind.henry / h;
      stepRhs[nl.inductorBranchIndex(k) * L + static_cast<std::size_t>(l)] =
          -(inds[l][k].vPrev + zeq * inds[l][k].iPrev);
    }
    for (const auto& cs : caps[l]) {
      const double geq = 2.0 * cs.c / h;
      const double ieq = -geq * cs.vPrev - cs.iPrev;
      stampIVec(stepRhs, nl, l, cs.a, cs.b, ieq);
    }
    for (std::size_t k = 0; k < nl.vsources().size(); ++k)
      stepRhs[nl.vsourceBranchIndex(k) * L + static_cast<std::size_t>(l)] =
          nl.vsources()[k].vdc;
  }

  bool iterating[L] = {};
  bool frozen[L] = {};
  for (int l = 0; l < L; ++l) {
    if (!alive[l]) continue;
    iterating[l] = true;
    vIter[l] = v[l];  // scalar warm start from the last accepted point
  }
  auto anyIterating = [&iterating]() {
    for (int l = 0; l < L; ++l)
      if (iterating[l]) return true;
    return false;
  };

  for (int it = 0; it < opts.maxNewtonIterations && anyIterating(); ++it) {
    work.a.assign(base.a.begin(), base.a.end());
    work.rhs.assign(stepRhs.begin(), stepRhs.end());
    std::array<const linalg::Vector*, L> vl{};
    for (int l = 0; l < L; ++l) {
      if (iterating[l]) {
        vl[l] = &vIter[l];
      } else {
        clearLaneToIdentity(work, l);
      }
    }
    evalDeviceBlocks(rnl, db, vl);
    // Nonlinear stamps with the lane loop innermost: the four lanes of one
    // matrix cell are contiguous, so each cell update is one vector add.
    // Per lane this accumulates exactly the scalar per-iteration sequence
    // (diodes in netlist order, then MOSFETs, same addAt order per device —
    // distinct lanes are independent slots, so interleaving across lanes is
    // order-free). Non-iterating lanes blend in an addend of exactly 0.0,
    // leaving their identity cells bit-unchanged; their op-block values are
    // finite (evalDeviceBlocks feeds dead lanes 0.0 inputs) and their
    // voltage gathers are masked to 0.0 so no NaN enters the blend.
    double* __restrict wa = work.a.data();
    double* __restrict wr = work.rhs.data();
    for (std::size_t k = 0; k < rnl.diodes().size(); ++k) {
      const DiodeStampIdx& ix = dioIdx[k];
      const DiodeOpBlock& op = db.dioOp[k];
      double mgd[L], ieq[L];
      for (int l = 0; l < L; ++l) {
        const double vak =
            iterating[l] ? vIter[l][static_cast<std::size_t>(ix.a)] -
                               vIter[l][static_cast<std::size_t>(ix.k)]
                         : 0.0;
        const double gd = iterating[l] ? op.gd[l] : 0.0;
        const double id = iterating[l] ? op.id[l] : 0.0;
        mgd[l] = gd;
        ieq[l] = id - gd * vak;
      }
      if (ix.cell[0] >= 0)
        for (int l = 0; l < L; ++l) wa[ix.cell[0] * L + l] += mgd[l];
      if (ix.cell[1] >= 0)
        for (int l = 0; l < L; ++l) wa[ix.cell[1] * L + l] -= mgd[l];
      if (ix.cell[2] >= 0)
        for (int l = 0; l < L; ++l) wa[ix.cell[2] * L + l] += mgd[l];
      if (ix.cell[3] >= 0)
        for (int l = 0; l < L; ++l) wa[ix.cell[3] * L + l] -= mgd[l];
      if (ix.rhsA >= 0)
        for (int l = 0; l < L; ++l) wr[ix.rhsA * L + l] -= ieq[l];
      if (ix.rhsK >= 0)
        for (int l = 0; l < L; ++l) wr[ix.rhsK * L + l] += ieq[l];
    }
    for (std::size_t k = 0; k < rnl.mosfets().size(); ++k) {
      const MosStampIdx& ix = mosIdx[k];
      const MosOpBlock& op = db.mosOp[k];
      double mv[4][L], ieq[L];
      for (int l = 0; l < L; ++l) {
        mv[0][l] = iterating[l] ? op.dIdVd[l] : 0.0;
        mv[1][l] = iterating[l] ? op.dIdVg[l] : 0.0;
        mv[2][l] = iterating[l] ? op.dIdVs[l] : 0.0;
        mv[3][l] = iterating[l] ? op.dIdVb[l] : 0.0;
      }
      for (int l = 0; l < L; ++l) {
        const double ids = iterating[l] ? op.ids[l] : 0.0;
        const double vd =
            iterating[l] ? vIter[l][static_cast<std::size_t>(ix.d)] : 0.0;
        const double vg =
            iterating[l] ? vIter[l][static_cast<std::size_t>(ix.g)] : 0.0;
        const double vs =
            iterating[l] ? vIter[l][static_cast<std::size_t>(ix.s)] : 0.0;
        const double vb =
            iterating[l] ? vIter[l][static_cast<std::size_t>(ix.b)] : 0.0;
        ieq[l] = ids - mv[0][l] * vd - mv[1][l] * vg - mv[2][l] * vs -
                 mv[3][l] * vb;
      }
      for (int e = 0; e < 4; ++e)
        if (ix.cell[e] >= 0)
          for (int l = 0; l < L; ++l) wa[ix.cell[e] * L + l] += mv[e][l];
      for (int e = 0; e < 4; ++e)
        if (ix.cell[4 + e] >= 0)
          for (int l = 0; l < L; ++l) wa[ix.cell[4 + e] * L + l] -= mv[e][l];
      if (ix.rhsD >= 0)
        for (int l = 0; l < L; ++l) wr[ix.rhsD * L + l] -= ieq[l];
      if (ix.rhsS >= 0)
        for (int l = 0; l < L; ++l) wr[ix.rhsS * L + l] += ieq[l];
    }
    lu.factor(work, iterating);
    lu.solve(work.rhs, xB);
    for (int l = 0; l < L; ++l) {
      if (!iterating[l]) continue;
      if (!lu.ok[l]) {
        // Scalar: `if (!lu.factor(A)) return result;` — the lane stops
        // recording mid-run, completed stays false.
        alive[l] = false;
        iterating[l] = false;
        continue;
      }
      double maxStep = 0.0;
      for (std::size_t i = 1; i < nodes; ++i) {
        const double dv = xB[(i - 1) * L + l] - vIter[l][i];
        maxStep = std::max(maxStep, std::abs(dv));
        vIter[l][i] = xB[(i - 1) * L + l];
      }
      if (maxStep < opts.tolAbs) {
        frozen[l] = true;
        iterating[l] = false;
        xSave[l].resize(n);
        for (std::size_t j = 0; j < n; ++j) xSave[l][j] = xB[j * L + l];
      }
    }
  }

  for (int l = 0; l < L; ++l) {
    if (!alive[l]) continue;
    if (!frozen[l]) {
      // Newton exhausted its iteration budget: scalar returns mid-run.
      alive[l] = false;
      continue;
    }
    const Netlist& nl = *nls[l];
    // Accept the step: update companion states (scalar order).
    for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
      const auto& ind = nl.inductors()[k];
      const double vNow = vIter[l][static_cast<std::size_t>(ind.a)] -
                          vIter[l][static_cast<std::size_t>(ind.b)];
      inds[l][k].iPrev = xSave[l][nl.inductorBranchIndex(k)];
      inds[l][k].vPrev = vNow;
    }
    for (auto& cs : caps[l]) {
      const double vNow = vIter[l][static_cast<std::size_t>(cs.a)] -
                          vIter[l][static_cast<std::size_t>(cs.b)];
      const double geq = 2.0 * cs.c / h;
      const double iNow = geq * (vNow - cs.vPrev) - cs.iPrev;
      cs.vPrev = vNow;
      cs.iPrev = iNow;
    }
    v[l] = vIter[l];
    results[l].times.push_back(static_cast<double>(stepIndex) * h);
    results[l].voltages.push_back(v[l]);
    linalg::Vector br(nBranches, 0.0);
    for (std::size_t k = 0; k < nBranches; ++k)
      br[k] = xSave[l][nl.nodeCount() - 1 + k];
    results[l].branchCurrents.push_back(std::move(br));
  }
}

TransientBatch::TransientBatch(
    const std::array<const Netlist*, kSimLanes>& nls,
    const TransientOptions& opts,
    const std::array<const linalg::Vector*, kSimLanes>& initial)
    : impl_(new Impl) {
  Impl& im = *impl_;
  im.nls = nls;
  im.opts = opts;
  for (int l = 0; l < L; ++l)
    if (nls[l] != nullptr && im.ref < 0) im.ref = l;
  assert(im.ref >= 0 && "TransientBatch needs at least one active lane");
  const Netlist& rnl = *nls[im.ref];
  im.n = rnl.unknownCount();
  im.nodes = rnl.nodeCount();
  im.nBranches = rnl.branchCount();
  const double h = opts.dt;
  im.totalSteps = static_cast<std::size_t>(opts.tStop / h);
  buildDeviceBlocks(nls, im.ref, im.db);
  buildStampIndices(rnl, im.n, im.mosIdx, im.dioIdx);
  im.base.reset(im.n);
  im.work.reset(im.n);
  im.stepRhs.assign(im.n * static_cast<std::size_t>(L), 0.0);
  im.xB.assign(im.n * static_cast<std::size_t>(L), 0.0);
  for (int l = 0; l < L; ++l) {
    if (nls[l] == nullptr) {
      clearLaneToIdentity(im.base, l);
      continue;
    }
    assert(sameTopology(rnl, *nls[l]));
    assert(initial[l] != nullptr && initial[l]->size() == im.nodes);
    im.active[l] = im.alive[l] = true;
    im.v[l] = *initial[l];
    const Netlist& nl = *nls[l];
    for (const auto& c : nl.capacitors())
      im.caps[l].push_back({c.a, c.b, c.farads, 0, 0});
    if (opts.includeDeviceCaps) {
      for (const auto& fet : nl.mosfets()) {
        const double cgg = gateCapacitance(fet.params, fet.geom);
        im.caps[l].push_back({fet.g, fet.s, 0.7 * cgg, 0, 0});
        im.caps[l].push_back({fet.g, fet.d, 0.3 * cgg, 0, 0});
        im.caps[l].push_back(
            {fet.d, fet.b, drainCapacitance(fet.params, fet.geom), 0, 0});
      }
    }
    for (auto& cs : im.caps[l]) {
      cs.vPrev = im.v[l][static_cast<std::size_t>(cs.a)] -
                 im.v[l][static_cast<std::size_t>(cs.b)];
      cs.iPrev = 0.0;
    }
    im.inds[l].resize(nl.inductors().size());
    for (std::size_t k = 0; k < im.inds[l].size(); ++k) {
      const auto& ind = nl.inductors()[k];
      im.inds[l][k].vPrev = im.v[l][static_cast<std::size_t>(ind.a)] -
                            im.v[l][static_cast<std::size_t>(ind.b)];
    }
    TransientResult& res = im.results[l];
    res.times.reserve(im.totalSteps + 1);
    res.voltages.reserve(im.totalSteps + 1);
    res.branchCurrents.reserve(im.totalSteps + 1);
    res.times.push_back(0.0);
    res.voltages.push_back(im.v[l]);
    res.branchCurrents.emplace_back(im.nBranches, 0.0);
    stampTransientBase(im.base, nl, l, im.caps[l], h);
  }
}

TransientBatch::~TransientBatch() = default;

std::size_t TransientBatch::totalSteps() const { return impl_->totalSteps; }

std::size_t TransientBatch::stepsDone() const { return impl_->done; }

void TransientBatch::step(std::size_t n) {
  Impl& im = *impl_;
  while (n > 0 && im.done < im.totalSteps) {
    ++im.done;
    --n;
    bool any = false;
    for (int l = 0; l < L; ++l) any = any || im.alive[l];
    if (any) im.doStep(im.done);
  }
  if (im.done == im.totalSteps) {
    for (int l = 0; l < L; ++l)
      if (im.alive[l]) im.results[l].completed = true;
  }
}

void TransientBatch::run() { step(impl_->totalSteps); }

const TransientResult& TransientBatch::result(int lane) const {
  assert(lane >= 0 && lane < L && impl_->active[lane]);
  return impl_->results[lane];
}

TransientResult TransientBatch::takeResult(int lane) {
  assert(lane >= 0 && lane < L && impl_->active[lane]);
  return std::move(impl_->results[lane]);
}

// ---------------------------------------------------------------------------
// Batched AC: lane-blocked complex LU over split re/im planes.
//
// Per lane this performs the exact op sequence of LuSolver<complex<double>>:
// the schoolbook multiply (ar*br - ai*bi, ar*bi + ai*br) written out below is
// the same linalg::cxMul expression the scalar complex LU spells out (see
// cxmath.hpp for why neither path may use std::complex operator*), and the
// reciprocal-multiply division goes through the shared cxReciprocal. Any
// non-finite excursion is still detected by the per-lane sticky finiteness
// flag, and flagged lanes are redone through the scalar AcSolver by the
// caller.
// ---------------------------------------------------------------------------
struct AcBatch::Impl {
  std::array<std::unique_ptr<AcSolver>, L> solvers;
  bool active[L] = {};
  bool finite[L] = {true, true, true, true};
  bool solveOk[L] = {};  ///< per-solveAt nonsingular flag
  int ref = -1;
  std::size_t n = 0;
  // Lane-interleaved copies of the (frequency-independent) G and C stamp
  // matrices, laid out (r*n + c)*L + l. Built once; every solveAt assembles
  // G + jwC straight into the LU planes as two linear passes instead of
  // per-lane strided Matrix reads plus a full copy.
  std::vector<double> gInt, cInt;
  std::vector<double> luRe, luIm;
  std::vector<double> xRe, xIm;    // i*L + l
  std::vector<std::size_t> perm;   // i*L + l
};

AcBatch::AcBatch(const std::array<const Netlist*, kSimLanes>& nls,
                 const std::array<const DcResult*, kSimLanes>& ops)
    : impl_(new Impl) {
  Impl& im = *impl_;
  for (int l = 0; l < L; ++l) {
    if (nls[l] == nullptr || ops[l] == nullptr) continue;
    if (im.ref < 0) {
      im.ref = l;
    } else {
      assert(sameTopology(*nls[im.ref], *nls[l]));
    }
    im.active[l] = true;
    im.solvers[l] = std::make_unique<AcSolver>(*nls[l], *ops[l]);
  }
  assert(im.ref >= 0 && "AcBatch needs at least one active lane");
  im.n = im.solvers[im.ref]->gStamps().rows();
  const std::size_t cells = im.n * im.n * static_cast<std::size_t>(L);
  im.gInt.assign(cells, 0.0);
  im.cInt.assign(cells, 0.0);
  im.luRe.assign(cells, 0.0);
  im.luIm.assign(cells, 0.0);
  im.xRe.assign(im.n * L, 0.0);
  im.xIm.assign(im.n * L, 0.0);
  im.perm.assign(im.n * L, 0);
  for (int l = 0; l < L; ++l) {
    if (!im.active[l]) {
      // Inactive lanes hold a fixed identity (C plane zero) so the shared
      // factorization stays benign at any frequency.
      for (std::size_t i = 0; i < im.n; ++i)
        im.gInt[(i * im.n + i) * L + l] = 1.0;
      continue;
    }
    const linalg::Matrix& g = im.solvers[l]->gStamps();
    const linalg::Matrix& c = im.solvers[l]->cStamps();
    for (std::size_t r = 0; r < im.n; ++r) {
      for (std::size_t cc = 0; cc < im.n; ++cc) {
        im.gInt[(r * im.n + cc) * L + l] = g(r, cc);
        im.cInt[(r * im.n + cc) * L + l] = c(r, cc);
      }
    }
  }
}

AcBatch::~AcBatch() = default;

void AcBatch::solveAt(double freqHz) {
  Impl& im = *impl_;
  const std::size_t n = im.n;
  const double w = 2.0 * std::numbers::pi * freqHz;

  // Assemble A = G + jwC straight into the LU planes (scalar: A(r,c) =
  // {g, w*c}); w * 0.0 keeps inactive lanes' identity imaginary-free. The
  // __restrict qualifiers (here and on the row pointers below) tell GCC the
  // planes and rows cannot overlap, which drops the runtime alias checks it
  // otherwise versions every vectorized loop with — measurable at MNA sizes
  // around a dozen where the inner loops only run a few vector iterations.
  const std::size_t cells = n * n * static_cast<std::size_t>(L);
  double* __restrict luRe = im.luRe.data();
  double* __restrict luIm = im.luIm.data();
  {
    const double* __restrict gInt = im.gInt.data();
    const double* __restrict cInt = im.cInt.data();
    for (std::size_t i = 0; i < cells; ++i) luRe[i] = gInt[i];
    for (std::size_t i = 0; i < cells; ++i) luIm[i] = w * cInt[i];
  }

  // Factor: per-lane scalar pivoting, vectorized elimination.
  for (std::size_t i = 0; i < n; ++i)
    for (int l = 0; l < L; ++l) im.perm[i * L + l] = i;
  for (int l = 0; l < L; ++l) im.solveOk[l] = im.active[l];

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search, row-major: one contiguous 4-lane cabs1 per row instead of
    // four strided column scans. Per lane this performs the same comparisons
    // in the same r order as the scalar LuSolver, so the pivot choice (and
    // every rounding after it) is identical; dead lanes' magnitudes are
    // computed but their results are never consumed.
    std::size_t pivots[L];
    double bests[L];
    for (int l = 0; l < L; ++l) {
      pivots[l] = k;
      bests[l] = linalg::cxPivotMag(
          {luRe[(k * n + k) * L + l], luIm[(k * n + k) * L + l]});
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double* __restrict colRe = luRe + (r * n + k) * L;
      const double* __restrict colIm = luIm + (r * n + k) * L;
      double m[L];
      for (int l = 0; l < L; ++l)
        m[l] = linalg::cxPivotMag({colRe[l], colIm[l]});
      for (int l = 0; l < L; ++l) {
        if (m[l] > bests[l]) {
          bests[l] = m[l];
          pivots[l] = r;
        }
      }
    }
    for (int l = 0; l < L; ++l) {
      if (!im.solveOk[l]) continue;
      if (bests[l] < 1e-300) {  // scalar solveSystem: nullopt -> zero solution
        im.solveOk[l] = false;
        continue;
      }
      const std::size_t pivot = pivots[l];
      if (pivot != k) {
        std::swap(im.perm[k * L + l], im.perm[pivot * L + l]);
        for (std::size_t c = 0; c < n; ++c) {
          std::swap(luRe[(k * n + c) * L + l], luRe[(pivot * n + c) * L + l]);
          std::swap(luIm[(k * n + c) * L + l], luIm[(pivot * n + c) * L + l]);
        }
      }
    }
    double invRe[L], invIm[L];
    for (int l = 0; l < L; ++l) {
      const std::complex<double> inv = linalg::cxReciprocal(
          {im.luRe[(k * n + k) * L + l], im.luIm[(k * n + k) * L + l]});
      invRe[l] = inv.real();
      invIm[l] = inv.imag();
    }
    const double* __restrict rowKRe = luRe + (k * n) * L;
    const double* __restrict rowKIm = luIm + (k * n) * L;
    for (std::size_t r = k + 1; r < n; ++r) {
      // Rows r and k are disjoint slices (r > k), so restrict holds.
      double* __restrict rowRRe = luRe + (r * n) * L;
      double* __restrict rowRIm = luIm + (r * n) * L;
      double fRe[L], fIm[L];
      for (int l = 0; l < L; ++l) {
        const double ar = rowRRe[k * L + l];
        const double ai = rowRIm[k * L + l];
        fRe[l] = ar * invRe[l] - ai * invIm[l];
        fIm[l] = ar * invIm[l] + ai * invRe[l];
      }
      for (int l = 0; l < L; ++l) {
        rowRRe[k * L + l] = fRe[l];
        rowRIm[k * L + l] = fIm[l];
      }
      for (std::size_t c = k + 1; c < n; ++c) {
        for (int l = 0; l < L; ++l) {
          const double kr = rowKRe[c * L + l];
          const double ki = rowKIm[c * L + l];
          rowRRe[c * L + l] -= fRe[l] * kr - fIm[l] * ki;
          rowRIm[c * L + l] -= fRe[l] * ki + fIm[l] * kr;
        }
      }
    }
  }

  // Solve (per lane: LuSolver<complex>::solveInto with b = bReal + j0).
  const double* bLane[L] = {};
  for (int l = 0; l < L; ++l)
    if (im.active[l]) bLane[l] = im.solvers[l]->acExcitation().data();
  double* __restrict xRe = im.xRe.data();
  double* __restrict xIm = im.xIm.data();
  for (std::size_t i = 0; i < n; ++i) {
    double accRe[L], accIm[L];
    for (int l = 0; l < L; ++l) {
      accRe[l] = bLane[l] != nullptr ? bLane[l][im.perm[i * L + l]] : 0.0;
      accIm[l] = 0.0;
    }
    for (std::size_t j = 0; j < i; ++j) {
      for (int l = 0; l < L; ++l) {
        const double mr = luRe[(i * n + j) * L + l];
        const double mi = luIm[(i * n + j) * L + l];
        const double xr = xRe[j * L + l];
        const double xi = xIm[j * L + l];
        accRe[l] -= mr * xr - mi * xi;
        accIm[l] -= mr * xi + mi * xr;
      }
    }
    for (int l = 0; l < L; ++l) {
      xRe[i * L + l] = accRe[l];
      xIm[i * L + l] = accIm[l];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double accRe[L], accIm[L];
    for (int l = 0; l < L; ++l) {
      accRe[l] = xRe[ii * L + l];
      accIm[l] = xIm[ii * L + l];
    }
    for (std::size_t j = ii + 1; j < n; ++j) {
      for (int l = 0; l < L; ++l) {
        const double mr = luRe[(ii * n + j) * L + l];
        const double mi = luIm[(ii * n + j) * L + l];
        const double xr = xRe[j * L + l];
        const double xi = xIm[j * L + l];
        accRe[l] -= mr * xr - mi * xi;
        accIm[l] -= mr * xi + mi * xr;
      }
    }
    double invRe[L], invIm[L];
    for (int l = 0; l < L; ++l) {
      const std::complex<double> inv = linalg::cxReciprocal(
          {luRe[(ii * n + ii) * L + l], luIm[(ii * n + ii) * L + l]});
      invRe[l] = inv.real();
      invIm[l] = inv.imag();
    }
    for (int l = 0; l < L; ++l) {
      xRe[ii * L + l] = accRe[l] * invRe[l] - accIm[l] * invIm[l];
      xIm[ii * L + l] = accRe[l] * invIm[l] + accIm[l] * invRe[l];
    }
  }

  // Singular lanes yield the scalar's zero solution; surviving lanes feed the
  // sticky finiteness check that gates the std::complex NaN-recovery redo.
  for (int l = 0; l < L; ++l) {
    if (!im.active[l]) continue;
    if (!im.solveOk[l]) {
      for (std::size_t i = 0; i < n; ++i) {
        im.xRe[i * L + l] = 0.0;
        im.xIm[i * L + l] = 0.0;
      }
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(im.xRe[i * L + l]) || !std::isfinite(im.xIm[i * L + l])) {
        im.finite[l] = false;
        break;
      }
    }
  }
}

std::complex<double> AcBatch::nodeVoltage(int lane, NodeId n) const {
  const Impl& im = *impl_;
  assert(lane >= 0 && lane < L && im.active[lane]);
  if (n == kGround) return {0.0, 0.0};
  const std::size_t i = im.solvers[lane]->netlist().nodeIndex(n);
  return {im.xRe[i * L + lane], im.xIm[i * L + lane]};
}

bool AcBatch::laneFinite(int lane) const {
  assert(lane >= 0 && lane < L);
  return impl_->finite[lane];
}

const AcSolver* AcBatch::laneSolver(int lane) const {
  assert(lane >= 0 && lane < L);
  return impl_->solvers[lane].get();
}

}  // namespace trdse::sim
