// Circuit description consumed by the DC/AC/transient solvers.
//
// Node 0 is ground. MOSFET instances carry their *PVT-adjusted* parameters:
// circuit builders call applyPvt() while constructing the netlist for a given
// corner, so the solvers never need to know which corner they are running.
#pragma once

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/mosfet.hpp"
#include "sim/process.hpp"

namespace trdse::sim {

using NodeId = int;
constexpr NodeId kGround = 0;

struct Resistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double ohms = 0.0;
};

struct Capacitor {
  NodeId a = kGround;
  NodeId b = kGround;
  double farads = 0.0;
};

/// Independent voltage source; positive current flows p -> n through the
/// source. Contributes one MNA branch unknown.
struct VSource {
  NodeId p = kGround;
  NodeId n = kGround;
  double vdc = 0.0;
  double vac = 0.0;  ///< small-signal magnitude for AC analysis
};

/// Independent current source; current idc flows from p through the source
/// into n (SPICE convention).
struct ISource {
  NodeId p = kGround;
  NodeId n = kGround;
  double idc = 0.0;
  double iac = 0.0;
};

/// Voltage-controlled voltage source (E element): v(p,n) = gain * v(cp,cn).
struct Vcvs {
  NodeId p = kGround;
  NodeId n = kGround;
  NodeId cp = kGround;
  NodeId cn = kGround;
  double gain = 1.0;
};

/// Voltage-controlled current source (G element): i(p->n) = gm * v(cp,cn).
struct Vccs {
  NodeId p = kGround;
  NodeId n = kGround;
  NodeId cp = kGround;
  NodeId cn = kGround;
  double gm = 0.0;
};

/// Junction diode with the ideal exponential law (anode -> cathode).
struct Diode {
  NodeId a = kGround;
  NodeId k = kGround;
  double isat = 1e-14;  ///< saturation current [A]
  double emission = 1.5;
};

/// Inductor; contributes one MNA branch unknown (short in DC).
struct Inductor {
  NodeId a = kGround;
  NodeId b = kGround;
  double henry = 0.0;
};

struct MosInstance {
  std::string name;
  NodeId d = kGround;
  NodeId g = kGround;
  NodeId s = kGround;
  NodeId b = kGround;
  MosType type = MosType::kNmos;
  MosGeometry geom;
  MosParams params;  ///< already PVT-adjusted
};

class Netlist {
 public:
  /// Get-or-create a named node. "0" and "gnd" map to ground.
  NodeId node(const std::string& name);
  /// Anonymous internal node.
  NodeId internalNode();

  void addResistor(NodeId a, NodeId b, double ohms);
  void addCapacitor(NodeId a, NodeId b, double farads);
  /// Returns the source's index (used to read its branch current later).
  std::size_t addVSource(NodeId p, NodeId n, double vdc, double vac = 0.0);
  void addISource(NodeId p, NodeId n, double idc, double iac = 0.0);
  std::size_t addVcvs(NodeId p, NodeId n, NodeId cp, NodeId cn, double gain);
  void addVccs(NodeId p, NodeId n, NodeId cp, NodeId cn, double gm);
  void addDiode(NodeId a, NodeId k, double isat = 1e-14, double emission = 1.5);
  std::size_t addInductor(NodeId a, NodeId b, double henry);
  /// Returns the device's index into mosfets().
  std::size_t addMosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
                        MosType type, const MosGeometry& geom,
                        const MosParams& params);

  std::size_t nodeCount() const { return nodeCount_; }  ///< includes ground
  /// Number of MNA unknowns: (nodes-1) + vsources + vcvs branches.
  std::size_t unknownCount() const;
  /// MNA row/column of a node (node must not be ground).
  std::size_t nodeIndex(NodeId n) const {
    assert(n > 0 && static_cast<std::size_t>(n) < nodeCount_);
    return static_cast<std::size_t>(n) - 1;
  }
  std::size_t vsourceBranchIndex(std::size_t vsrcIdx) const {
    return nodeCount_ - 1 + vsrcIdx;
  }
  std::size_t vcvsBranchIndex(std::size_t vcvsIdx) const {
    return nodeCount_ - 1 + vsources_.size() + vcvsIdx;
  }
  std::size_t inductorBranchIndex(std::size_t indIdx) const {
    return nodeCount_ - 1 + vsources_.size() + vcvs_.size() + indIdx;
  }
  /// Total branch unknowns (vsources, vcvs, inductors — in that order).
  std::size_t branchCount() const {
    return vsources_.size() + vcvs_.size() + inductors_.size();
  }

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  std::vector<VSource>& vsources() { return vsources_; }
  const std::vector<ISource>& isources() const { return isources_; }
  std::vector<ISource>& isources() { return isources_; }
  const std::vector<Vcvs>& vcvs() const { return vcvs_; }
  const std::vector<Vccs>& vccs() const { return vccs_; }
  const std::vector<Diode>& diodes() const { return diodes_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<MosInstance>& mosfets() const { return mosfets_; }
  /// Mutable device access for post-construction transforms (mismatch).
  std::vector<MosInstance>& mosfetsMutable() { return mosfets_; }

  /// Junction temperature for device evaluation (set from the PVT corner).
  double tempK = 300.15;

  /// Find a node id by name; returns -1 when absent.
  NodeId findNode(const std::string& name) const;

 private:
  std::size_t nodeCount_ = 1;  // ground pre-exists
  std::unordered_map<std::string, NodeId> names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<Vcvs> vcvs_;
  std::vector<Vccs> vccs_;
  std::vector<Diode> diodes_;
  std::vector<Inductor> inductors_;
  std::vector<MosInstance> mosfets_;
};

}  // namespace trdse::sim
