#pragma once
// Per-phase wall-time counters for the batched operating-point engines.
//
// The hot loops in op_batch.cpp attribute their time to four phases —
// device-card evaluation, matrix/RHS stamping, LU factorization, and
// triangular solve — so perf PRs can see where a win or regression landed
// without a profiler. Profiling is off by default and the counters then stay
// at exactly zero: the only cost on the hot path is one relaxed atomic load
// per phase scope, and downstream consumers (EvalStats equality checks,
// checkpoint round-trips) see stable all-zero values.
//
// The totals are process-global (relaxed atomic adds), aggregated across all
// engine pool workers; they are diagnostics, not resumable state, and are
// deliberately excluded from the checkpoint wire format.

#include <cstdint>

namespace trdse::sim {

enum class SimPhase { kDeviceEval = 0, kStamp = 1, kFactor = 2, kSolve = 3 };

struct SimPhaseTotals {
  std::uint64_t deviceEvalNs = 0;
  std::uint64_t stampNs = 0;
  std::uint64_t factorNs = 0;
  std::uint64_t solveNs = 0;
};

bool simProfilingEnabled();
void setSimProfiling(bool on);
SimPhaseTotals simPhaseTotals();
void resetSimPhaseTotals();
void addSimPhaseNs(SimPhase phase, std::uint64_t ns);

/// Monotonic clock read, only meaningful for differences.
std::int64_t simProfileNowNs();

/// RAII phase scope. When profiling is disabled the constructor is a single
/// relaxed load and the destructor a branch.
class SimPhaseTimer {
 public:
  explicit SimPhaseTimer(SimPhase phase) : phase_(phase) {
    if (simProfilingEnabled()) startNs_ = simProfileNowNs();
  }
  SimPhaseTimer(const SimPhaseTimer&) = delete;
  SimPhaseTimer& operator=(const SimPhaseTimer&) = delete;
  ~SimPhaseTimer() {
    if (startNs_ >= 0)
      addSimPhaseNs(phase_,
                    static_cast<std::uint64_t>(simProfileNowNs() - startNs_));
  }

 private:
  SimPhase phase_;
  std::int64_t startNs_ = -1;
};

}  // namespace trdse::sim
