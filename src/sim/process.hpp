// Process cards and PVT (process / voltage / temperature) scaling.
//
// The paper develops on BSIM 45nm/22nm cards (ngspice) and deploys on TSMC
// N6/N5 (Spectre). Those cards are proprietary; we substitute compact
// EKV-flavoured parameter sets per node whose *relative* behaviour matches
// what the experiments rely on: distinct inter-node distributions (process
// porting, Table II) and corner-/temperature-dependent feasibility (PVT
// exploration, Table III).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace trdse::sim {

enum class MosType : std::uint8_t { kNmos, kPmos };

/// Compact model parameters for one device polarity at nominal TT / 300.15 K.
struct MosParams {
  double kp = 4e-4;       ///< transconductance factor µ0*Cox [A/V^2]
  double vth0 = 0.45;     ///< zero-bias threshold magnitude [V]
  double lambdaCoeff = 0.02e-6;  ///< CLM: lambda = lambdaCoeff / L [1/V * m]
  double gamma = 0.3;     ///< body-effect coefficient [sqrt(V)]
  double phi = 0.8;       ///< surface potential 2*phiF [V]
  double slopeN = 1.3;    ///< subthreshold slope factor
  double cox = 0.012;     ///< gate capacitance per area [F/m^2]
  double cjArea = 1e-3;   ///< junction cap per gate area proxy [F/m^2]
};

/// One technology node.
struct ProcessCard {
  std::string name;       ///< "bsim45", "bsim22", "n6", "n5"
  double minL = 45e-9;    ///< minimum channel length [m]
  double nominalVdd = 1.1;
  double tnomK = 300.15;  ///< parameter reference temperature
  MosParams nmos;
  MosParams pmos;
};

enum class ProcessCorner : std::uint8_t { kTT, kFF, kSS, kFS, kSF };

std::string_view toString(ProcessCorner c);

/// One PVT condition: process corner + supply + junction temperature.
struct PvtCorner {
  ProcessCorner corner = ProcessCorner::kTT;
  double vdd = 1.1;    ///< actual supply for this condition [V]
  double tempC = 27.0; ///< junction temperature [Celsius]

  std::string name() const;
  double tempK() const { return tempC + 273.15; }
  friend bool operator==(const PvtCorner&, const PvtCorner&) = default;
};

/// Apply corner + temperature scaling to one polarity's parameters.
/// FF: lower |vth|, higher mobility; SS: the opposite; FS/SF split by type.
/// Temperature: kp ~ (T/Tnom)^-1.5, |vth| drops ~1 mV/K.
MosParams applyPvt(const MosParams& nominal, MosType type, const PvtCorner& pvt,
                   double tnomK);

/// Thermal voltage kT/q at a given absolute temperature.
double thermalVoltage(double tempK);

// ---- Card library ----

/// Open-source-style development cards (paper Section V-B..D).
const ProcessCard& bsim45Card();
const ProcessCard& bsim22Card();
/// Synthetic advanced-node stand-ins for the industrial TSMC N6/N5 cases
/// (paper Section V-E); see DESIGN.md substitution table.
const ProcessCard& n6Card();
const ProcessCard& n5Card();

/// Look up a card by name; nullptr on unknown names (for callers that want
/// to report the error themselves, e.g. circuits::Registry).
const ProcessCard* findCard(std::string_view name);

/// Look up a card by name; asserts on unknown names (programmer error).
const ProcessCard& cardByName(std::string_view name);

}  // namespace trdse::sim
