// Small-signal AC analysis.
//
// The netlist's MOSFETs are linearized at a previously-computed DC operating
// point (their four-terminal Jacobian becomes the conductance stamp) and
// device parasitic capacitances (cgs / cgd / cdb) are added automatically, so
// Miller multiplication and non-dominant poles emerge from the topology
// rather than from hand-inserted elements. Per frequency the complex system
// (G + jωC) x = b_ac is LU-solved.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"
#include "sim/dc.hpp"
#include "sim/netlist.hpp"

namespace trdse::sim {

class AcSolver {
 public:
  /// `op` must be a converged DcResult for the same netlist.
  AcSolver(const Netlist& netlist, const DcResult& op);

  /// Complex solution vector (nodes then branches) at one frequency.
  linalg::ComplexVector solveAt(double freqHz) const;

  /// Solve with a unit AC current injected from node `from` into node `to`
  /// (all independent AC sources zeroed) — the workhorse of noise analysis,
  /// where every noise generator is a current source across its device.
  linalg::ComplexVector solveCurrentInjection(double freqHz, NodeId from,
                                              NodeId to) const;

  /// Complex voltage at a node for the solution of solveAt().
  std::complex<double> nodeVoltage(const linalg::ComplexVector& x, NodeId n) const;

  /// Log-spaced frequency grid [fStart, fStop] with `points` samples.
  static std::vector<double> logSpace(double fStart, double fStop,
                                      std::size_t points);

  /// Sweep: complex voltage of `out` at each frequency.
  std::vector<std::complex<double>> sweep(const std::vector<double>& freqs,
                                          NodeId out) const;

  /// Raw stamp access for the batched AC engine (sim/op_batch.cpp), which
  /// builds its per-lane systems from the scalar solver's matrices so the
  /// two paths assemble bit-identical A = G + jwC.
  const linalg::Matrix& gStamps() const { return g_; }
  const linalg::Matrix& cStamps() const { return c_; }
  const linalg::Vector& acExcitation() const { return bReal_; }
  const Netlist& netlist() const { return netlist_; }

 private:
  const Netlist& netlist_;
  linalg::Matrix g_;  // conductance + source topology stamps
  linalg::Matrix c_;  // capacitance stamps (multiplied by jω per point)
  linalg::Vector bReal_;  // AC excitation (vac / iac entries)
};

/// 20*log10(|h|), with a -400 dB floor for numerically-zero responses.
double magnitudeDb(const std::complex<double>& h);
/// Phase in degrees, unwrapped relative monotonically from the first point.
std::vector<double> unwrappedPhaseDeg(const std::vector<std::complex<double>>& h);

struct LoopMetrics {
  double dcGainDb = -400.0;
  double unityGainHz = 0.0;   ///< 0 when |H| never crosses 1
  double phaseMarginDeg = 0.0;
  bool crossesUnity = false;
};

/// Open-loop amplifier metrics from a swept transfer function: DC gain,
/// unity-gain crossover (log-interpolated) and phase margin at the crossover.
LoopMetrics analyzeLoop(const std::vector<double>& freqs,
                        const std::vector<std::complex<double>>& h);

}  // namespace trdse::sim
