#pragma once
// Precompiled per-topology assembly plans for the batched operating-point
// engines.
//
// Every batched solve (DC, transient) over a netlist family with identical
// connectivity performs the same index arithmetic: which flat matrix cells a
// device's Newton stamp scatters into, which RHS rows its companion current
// touches. An AssemblyPlan captures that arithmetic once per *topology* —
// node/branch counts plus the device→matrix-slot scatter tables — and a
// process-wide cache keyed on the connectivity signature hands the same
// immutable plan to every subsequent solve over that topology, so the steady
// state of an evaluation sweep rebuilds nothing per call.
//
// Ownership/lifecycle rules (see docs/ARCHITECTURE.md):
//  - Plans are immutable after construction and shared via shared_ptr;
//    holders may keep a handle across calls and threads freely.
//  - The cache verifies the full connectivity signature on every hit, so a
//    hash collision degrades to building a second plan, never to stamping
//    through the wrong slot table.
//  - Plan contents are pure *structure*. Per-lane device values (conductance
//    images, companion states, device contexts) live in the per-call
//    workspaces, because lanes differ in sizing and PVT corner.
//
// clearPlanCache()/planBuildCount() exist for tests: the plan-reuse property
// test asserts that two sweeps over one topology build exactly one plan and
// produce bitwise-equal measurements.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/netlist.hpp"

namespace trdse::sim {

/// Flat matrix/RHS scatter slots for one MOSFET's Newton stamp: cell[e] is
/// (row*n + col) of the e-th stamped cell in the scalar stampers' order —
/// (d,d) (d,g) (d,s) (d,b) (s,d) (s,g) (s,s) (s,b) — and a -1 marks a
/// ground-suppressed entry the scalar stampers skip.
struct MosStampIdx {
  int cell[8];
  int rhsD, rhsS;  ///< ieq rows
  NodeId d, g, s, b;
};

struct DiodeStampIdx {
  int cell[4];  ///< (a,a) (a,k) (k,k) (k,a)
  int rhsA, rhsK;
  NodeId a, k;
};

struct AssemblyPlan {
  std::uint64_t hash = 0;  ///< FNV-1a over topoSig
  std::size_t n = 0;       ///< unknownCount (MNA dimension)
  std::size_t nodes = 0;
  std::size_t nBranches = 0;
  std::vector<MosStampIdx> mosIdx;
  std::vector<DiodeStampIdx> dioIdx;
  /// Canonical connectivity signature — exactly the fields sameTopology()
  /// compares, flattened. Equal signature <=> same topology.
  std::vector<std::int64_t> topoSig;
};

using PlanHandle = std::shared_ptr<const AssemblyPlan>;

/// Look up (or build and cache) the plan for `nl`'s topology.
PlanHandle acquirePlan(const Netlist& nl);

/// Total plans ever built in this process (cache misses). Test hook.
std::uint64_t planBuildCount();

/// Drop all cached plans (outstanding handles stay valid). Test hook.
void clearPlanCache();

/// The canonical connectivity signature acquirePlan keys on.
std::vector<std::int64_t> topologySignature(const Netlist& nl);

}  // namespace trdse::sim
