#include "sim/mosfet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/fastmath.hpp"

// Scalar and batched kernels live in this one translation unit and it is
// compiled with -ffp-contract=off (see CMakeLists): contraction (FMA fusion)
// applied differently to the same source in different inlining contexts is
// enough to break the bitwise scalar<->batched guarantee, so it is disabled
// here outright.

namespace trdse::sim {

namespace {

namespace fmx = trdse::fastmath;

/// EKV interpolation F(x) = ln^2(1 + e^{x/2}) and dF/dx. Branchless: one
/// fastExp feeds both the log1p reduction and the sigmoid, whose denominator
/// 1 + e^h is exactly the log1p argument, so a single reciprocal serves both.
struct FPair {
  double f;
  double df;
};

inline FPair ekvF(double x) {
  const double h = 0.5 * x;
  const double ep = fmx::fastExp(h);
  const double u = 1.0 + ep;
  const double invU = 1.0 / u;
  const std::uint64_t uu = fmx::bitsOf(u);
  const std::int64_t kRaw =
      static_cast<std::int64_t>((uu + fmx::kLogAdj) >> 52) - 1023;
  const double k = static_cast<double>(kRaw);
  const double m = fmx::fromBits(uu - (static_cast<std::uint64_t>(kRaw) << 52));
  const double c = (ep - (u - 1.0)) * invU;
  const double s = (m - 1.0) / (m + 1.0);
  const double poly = 2.0 + fmx::log1pTail(s * s);
  const double lnFull = k * fmx::kLn2Hi + (s * poly + (c + k * fmx::kLn2Lo));
  // e^{-h} is negligible past h = 30; the saturated arm keeps the reduction's
  // exponent arithmetic in range for extreme Newton excursions.
  const double lnTerm = (h > 30.0) ? h : lnFull;
  const double sig = ep * invU;                  // sigmoid(h) = e^h/(1+e^h)
  return {lnTerm * lnTerm, lnTerm * sig};        // dF/dx = ln * sig
}

using simd::V4d;
using simd::V4i;

/// 4-lane ekvF with explicit vectors: the same per-lane op sequence as the
/// scalar ekvF (fastExp4/logReduce4/log1pTail4 replicate their scalar twins
/// expression for expression); only fastExp4's 128-entry table lookup stays
/// scalar, exactly as the scalar path indexes it.
inline void ekvF4(V4d x, V4d* f, V4d* df) {
  const V4d h = 0.5 * x;
  const V4d ep = fmx::fastExp4(h);
  const V4d u = 1.0 + ep;
  const V4d invU = 1.0 / u;
  V4d k, m;
  fmx::logReduce4(u, &k, &m);
  const V4d c = (ep - (u - 1.0)) * invU;
  const V4d s = (m - 1.0) / (m + 1.0);
  const V4d poly = 2.0 + fmx::log1pTail4(s * s);
  const V4d lnFull = k * fmx::kLn2Hi + (s * poly + (c + k * fmx::kLn2Lo));
  const V4d lnTerm = simd::select4(h > 30.0, h, lnFull);
  const V4d sig = ep * invU;
  *f = lnTerm * lnTerm;
  *df = lnTerm * sig;
}

constexpr double kMinArg = 0.05;  // body-effect sqrt clamp
const double kSqMinArg = std::sqrt(kMinArg);

}  // namespace

MosDeviceCtx makeMosCtx(const MosParams& params, MosType type,
                        const MosGeometry& geom, double tempK) {
  MosDeviceCtx c;
  c.sign = (type == MosType::kPmos) ? -1.0 : 1.0;
  c.vt = thermalVoltage(tempK);
  c.n = params.slopeN;
  const double weff = geom.w * geom.m;
  const double beta = params.kp * weff / geom.l;
  c.ispec = 2.0 * c.n * beta * c.vt * c.vt;
  c.sq0 = std::sqrt(params.phi);
  c.lambda = params.lambdaCoeff / geom.l;
  c.vth0 = params.vth0;
  c.gamma = params.gamma;
  c.phi = params.phi;
  // Hoisted divides: these are the verbatim expressions evalMosCtx used to
  // compute per call, so the cached values carry identical bits.
  c.invN = 1.0 / c.n;
  c.invVtN = (1.0 / c.n) / c.vt;
  c.negInvVt = -1.0 / c.vt;
  return c;
}

MosOp evalMosCtx(const MosDeviceCtx& c, double vd, double vg, double vs,
                 double vb) {
  // PMOS is evaluated as its mirrored NMOS equivalent (all voltages negated);
  // the current negates on the way back while the derivatives keep their sign
  // (d(-I)/d(-V) = dI/dV).
  const double vdn = c.sign * vd;
  const double vgn = c.sign * vg;
  const double vsn = c.sign * vs;
  const double vbn = c.sign * vb;

  // Body effect on threshold (clamped so sqrt stays real and smooth enough).
  const double vsb = vsn - vbn;
  double vth = c.vth0;
  double dVthDvs = 0.0;
  const double arg = c.phi + vsb;
  if (arg > kMinArg) {
    const double sq = std::sqrt(arg);
    vth += c.gamma * (sq - c.sq0);
    dVthDvs = c.gamma / (2.0 * sq);
  } else {
    vth += c.gamma * (kSqMinArg - c.sq0);  // frozen below the clamp
  }

  // Pinch-off voltage referenced to bulk.
  const double vp = (vgn - vbn - vth) / c.n;
  const double xf = (vp - (vsn - vbn)) / c.vt;
  const double xr = (vp - (vdn - vbn)) / c.vt;
  const auto [ff, dff] = ekvF(xf);
  const auto [fr, dfr] = ekvF(xr);

  // Channel-length modulation on the net current.
  const double vds = vdn - vsn;
  const double clm = std::max(0.2, 1.0 + c.lambda * vds);
  const bool clmActive = (1.0 + c.lambda * vds) > 0.2;

  const double core = c.ispec * (ff - fr);
  const double ids = core * clm;

  // Chain rule into terminal voltages (all in the NMOS-equivalent frame).
  // The ctx-only divides read precomputed fields; the shared factor
  // t = -dVthDvs/n reuses the historical parse exactly — unary negation is
  // sign-flip-only, so dVthDvs/n == -t bit for bit and the dXfDvb sum below
  // matches its original (1 - 1/n + dVthDvs/n)/vt association.
  const double dXfDvg = c.invVtN;
  const double dXrDvg = dXfDvg;
  const double t = -dVthDvs / c.n;
  const double dXfDvs = (t - 1.0) / c.vt;
  const double dXrDvs = t / c.vt;
  const double dXfDvd = 0.0;
  const double dXrDvd = c.negInvVt;
  // vb enters via vp's -vb/n... and the explicit +vb in both x terms:
  // xf = (vp - vs + vb)/vt with vp containing -vb/n
  //   =>  d xf/d vb = (1 - 1/n + dVthDvs/n)/vt
  const double dXfDvb = ((1.0 - c.invN) - t) / c.vt;
  const double dXrDvb = dXfDvb;

  const double dCoreDvg = c.ispec * (dff * dXfDvg - dfr * dXrDvg);
  const double dCoreDvd = c.ispec * (dff * dXfDvd - dfr * dXrDvd);
  const double dCoreDvs = c.ispec * (dff * dXfDvs - dfr * dXrDvs);
  const double dCoreDvb = c.ispec * (dff * dXfDvb - dfr * dXrDvb);

  const double dClmDvd = clmActive ? c.lambda : 0.0;
  const double dClmDvs = clmActive ? -c.lambda : 0.0;

  MosOp op;
  op.ids = c.sign * ids;
  op.dIdVd = dCoreDvd * clm + core * dClmDvd;
  op.dIdVg = dCoreDvg * clm;
  op.dIdVs = dCoreDvs * clm + core * dClmDvs;
  op.dIdVb = dCoreDvb * clm;
  op.gm = std::abs(op.dIdVg);
  op.gds = std::abs(op.dIdVd);
  return op;
}

void evalMosBlock(const MosCtxBlock& c, const double* vd, const double* vg,
                  const double* vs, const double* vb, MosOpBlock& out) {
  static_assert(kSimLanes == 4, "explicit vector kernel assumes 4 lanes");
  const V4d sign = simd::load4(c.sign);
  const V4d vdn = sign * simd::load4(vd);
  const V4d vgn = sign * simd::load4(vg);
  const V4d vsn = sign * simd::load4(vs);
  const V4d vbn = sign * simd::load4(vb);
  const V4d arg = simd::load4(c.phi) + (vsn - vbn);

  // Blend form of the scalar branch. sqrt is correctly rounded, so
  // sqrt(kMinArg) here is bit-identical to the scalar path's precomputed
  // kSqMinArg, and the one unconditional sqrt covers both arms; the division
  // runs unconditionally on a strictly-positive sq and only its result is
  // blended.
  const V4i body = arg > kMinArg;
  const V4d zero = simd::splat4(0.0);
  const V4d gamma = simd::load4(c.gamma);
  const V4d sq = simd::sqrt4(simd::select4(body, arg, simd::splat4(kMinArg)));
  const V4d dv = gamma / (2.0 * sq);
  const V4d vth = simd::load4(c.vth0) + gamma * (sq - simd::load4(c.sq0));
  const V4d dVthDvs = simd::select4(body, dv, zero);

  const V4d n = simd::load4(c.n);
  const V4d vt = simd::load4(c.vt);
  const V4d vp = (vgn - vbn - vth) / n;
  const V4d xf = (vp - (vsn - vbn)) / vt;
  const V4d xr = (vp - (vdn - vbn)) / vt;
  V4d ff, dff, fr, dfr;
  ekvF4(xf, &ff, &dff);
  ekvF4(xr, &fr, &dfr);

  const V4d lambda = simd::load4(c.lambda);
  const V4d vds = vdn - vsn;
  const V4d clmRaw = 1.0 + lambda * vds;
  // std::max(0.2, clmRaw) == (0.2 < clmRaw) ? clmRaw : 0.2, including the
  // NaN arm (comparison false -> 0.2), so one mask serves max and clmActive.
  const V4i clmActive = clmRaw > 0.2;
  const V4d clm = simd::select4(clmActive, clmRaw, simd::splat4(0.2));

  const V4d ispec = simd::load4(c.ispec);
  const V4d core = ispec * (ff - fr);
  const V4d ids = core * clm;

  // Same hoisted-divide / shared-factor rewrite as the scalar evalMosCtx —
  // see the comment there for the bitwise argument.
  const V4d dXfDvg = simd::load4(c.invVtN);
  const V4d dXrDvg = dXfDvg;
  const V4d t = -dVthDvs / n;
  const V4d dXfDvs = (t - 1.0) / vt;
  const V4d dXrDvs = t / vt;
  const V4d dXfDvd = zero;
  const V4d dXrDvd = simd::load4(c.negInvVt);
  const V4d dXfDvb = ((1.0 - simd::load4(c.invN)) - t) / vt;
  const V4d dXrDvb = dXfDvb;

  const V4d dCoreDvg = ispec * (dff * dXfDvg - dfr * dXrDvg);
  const V4d dCoreDvd = ispec * (dff * dXfDvd - dfr * dXrDvd);
  const V4d dCoreDvs = ispec * (dff * dXfDvs - dfr * dXrDvs);
  const V4d dCoreDvb = ispec * (dff * dXfDvb - dfr * dXrDvb);

  const V4d dClmDvd = simd::select4(clmActive, lambda, zero);
  const V4d dClmDvs = simd::select4(clmActive, -lambda, zero);

  const V4d dIdVg = dCoreDvg * clm;
  const V4d dIdVd = dCoreDvd * clm + core * dClmDvd;
  simd::store4(out.ids, sign * ids);
  simd::store4(out.dIdVd, dIdVd);
  simd::store4(out.dIdVg, dIdVg);
  simd::store4(out.dIdVs, dCoreDvs * clm + core * dClmDvs);
  simd::store4(out.dIdVb, dCoreDvb * clm);
  simd::store4(out.gm, simd::abs4(dIdVg));
  simd::store4(out.gds, simd::abs4(dIdVd));
}

MosOp evalMos(const MosParams& params, MosType type, const MosGeometry& geom,
              double vd, double vg, double vs, double vb, double tempK) {
  return evalMosCtx(makeMosCtx(params, type, geom, tempK), vd, vg, vs, vb);
}

double gateCapacitance(const MosParams& params, const MosGeometry& geom) {
  return (2.0 / 3.0) * geom.w * geom.m * geom.l * params.cox * 1.3;
}

double drainCapacitance(const MosParams& params, const MosGeometry& geom) {
  return geom.w * geom.m * geom.l * params.cjArea * 40.0;  // junction proxy
}

}  // namespace trdse::sim
