#include "sim/mosfet.hpp"

#include <algorithm>
#include <cmath>

namespace trdse::sim {

namespace {

/// EKV interpolation F(x) = ln^2(1 + e^{x/2}) and dF/dx, computed without
/// overflow for large |x|.
struct FPair {
  double f;
  double df;
};

FPair ekvF(double x) {
  // ln(1 + e^{x/2}) with the usual stable split.
  const double h = 0.5 * x;
  double lnTerm;
  if (h > 30.0) {
    lnTerm = h;  // e^{-h} negligible
  } else {
    lnTerm = std::log1p(std::exp(h));
  }
  // sigmoid(h) = e^h / (1 + e^h), stable on both sides.
  double sig;
  if (h > 0) {
    const double e = std::exp(-h);
    sig = 1.0 / (1.0 + e);
  } else {
    const double e = std::exp(h);
    sig = e / (1.0 + e);
  }
  return {lnTerm * lnTerm, lnTerm * sig};  // dF/dx = 2*ln*(dln/dx) = ln*sig
}

}  // namespace

MosOp evalMos(const MosParams& params, MosType type, const MosGeometry& geom,
              double vd, double vg, double vs, double vb, double tempK) {
  // PMOS is evaluated as its mirrored NMOS equivalent (all voltages negated);
  // the current negates on the way back while the derivatives keep their sign
  // (d(-I)/d(-V) = dI/dV).
  const double sign = (type == MosType::kPmos) ? -1.0 : 1.0;
  const double vdn = sign * vd;
  const double vgn = sign * vg;
  const double vsn = sign * vs;
  const double vbn = sign * vb;

  const double vt = thermalVoltage(tempK);
  const double n = params.slopeN;
  const double weff = geom.w * geom.m;
  const double beta = params.kp * weff / geom.l;
  const double ispec = 2.0 * n * beta * vt * vt;

  // Body effect on threshold (clamped so sqrt stays real and smooth enough).
  const double vsb = vsn - vbn;
  const double phi = params.phi;
  const double sq0 = std::sqrt(phi);
  double vth = params.vth0;
  double dVthDvs = 0.0;
  const double arg = phi + vsb;
  constexpr double kMinArg = 0.05;
  if (arg > kMinArg) {
    const double sq = std::sqrt(arg);
    vth += params.gamma * (sq - sq0);
    dVthDvs = params.gamma / (2.0 * sq);
  } else {
    const double sq = std::sqrt(kMinArg);
    vth += params.gamma * (sq - sq0);  // frozen below the clamp
  }

  // Pinch-off voltage referenced to bulk.
  const double vp = (vgn - vbn - vth) / n;
  // dvp/dvg = 1/n ; dvp/dvs = -dVthDvs/n ; dvp/dvb = -1/n (+ vth clamp term).

  const double xf = (vp - (vsn - vbn)) / vt;
  const double xr = (vp - (vdn - vbn)) / vt;
  const auto [ff, dff] = ekvF(xf);
  const auto [fr, dfr] = ekvF(xr);

  // Channel-length modulation on the net current.
  const double lambda = params.lambdaCoeff / geom.l;
  const double vds = vdn - vsn;
  const double clm = std::max(0.2, 1.0 + lambda * vds);
  const bool clmActive = (1.0 + lambda * vds) > 0.2;

  const double core = ispec * (ff - fr);
  const double ids = core * clm;

  // Chain rule into terminal voltages (all in the NMOS-equivalent frame).
  const double dXfDvg = (1.0 / n) / vt;
  const double dXrDvg = dXfDvg;
  const double dXfDvs = (-dVthDvs / n - 1.0) / vt;
  const double dXrDvs = (-dVthDvs / n) / vt;
  const double dXfDvd = 0.0;
  const double dXrDvd = -1.0 / vt;
  // vb enters via vp's -vb/n... and the explicit +vb in both x terms:
  // xf = (vp - vs + vb)/vt with vp containing -vb/n  =>  d xf/d vb = (1 - 1/n + dVthDvs/n)/vt
  const double dXfDvb = (1.0 - 1.0 / n + dVthDvs / n) / vt;
  const double dXrDvb = dXfDvb;

  const double dCoreDvg = ispec * (dff * dXfDvg - dfr * dXrDvg);
  const double dCoreDvd = ispec * (dff * dXfDvd - dfr * dXrDvd);
  const double dCoreDvs = ispec * (dff * dXfDvs - dfr * dXrDvs);
  const double dCoreDvb = ispec * (dff * dXfDvb - dfr * dXrDvb);

  const double dClmDvd = clmActive ? lambda : 0.0;
  const double dClmDvs = clmActive ? -lambda : 0.0;

  MosOp op;
  op.ids = sign * ids;
  op.dIdVd = dCoreDvd * clm + core * dClmDvd;
  op.dIdVg = dCoreDvg * clm;
  op.dIdVs = dCoreDvs * clm + core * dClmDvs;
  op.dIdVb = dCoreDvb * clm;
  op.gm = std::abs(op.dIdVg);
  op.gds = std::abs(op.dIdVd);
  return op;
}

double gateCapacitance(const MosParams& params, const MosGeometry& geom) {
  return (2.0 / 3.0) * geom.w * geom.m * geom.l * params.cox * 1.3;
}

double drainCapacitance(const MosParams& params, const MosGeometry& geom) {
  return geom.w * geom.m * geom.l * params.cjArea * 40.0;  // junction proxy
}

}  // namespace trdse::sim
