#include "sim/mosfet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/fastmath.hpp"

// Scalar and batched kernels live in this one translation unit and it is
// compiled with -ffp-contract=off (see CMakeLists): contraction (FMA fusion)
// applied differently to the same source in different inlining contexts is
// enough to break the bitwise scalar<->batched guarantee, so it is disabled
// here outright.

namespace trdse::sim {

namespace {

namespace fmx = trdse::fastmath;

/// EKV interpolation F(x) = ln^2(1 + e^{x/2}) and dF/dx. Branchless: one
/// fastExp feeds both the log1p reduction and the sigmoid, whose denominator
/// 1 + e^h is exactly the log1p argument, so a single reciprocal serves both.
struct FPair {
  double f;
  double df;
};

inline FPair ekvF(double x) {
  const double h = 0.5 * x;
  const double ep = fmx::fastExp(h);
  const double u = 1.0 + ep;
  const double invU = 1.0 / u;
  const std::uint64_t uu = fmx::bitsOf(u);
  const std::int64_t kRaw =
      static_cast<std::int64_t>((uu + fmx::kLogAdj) >> 52) - 1023;
  const double k = static_cast<double>(kRaw);
  const double m = fmx::fromBits(uu - (static_cast<std::uint64_t>(kRaw) << 52));
  const double c = (ep - (u - 1.0)) * invU;
  const double s = (m - 1.0) / (m + 1.0);
  const double poly = 2.0 + fmx::log1pTail(s * s);
  const double lnFull = k * fmx::kLn2Hi + (s * poly + (c + k * fmx::kLn2Lo));
  // e^{-h} is negligible past h = 30; the saturated arm keeps the reduction's
  // exponent arithmetic in range for extreme Newton excursions.
  const double lnTerm = (h > 30.0) ? h : lnFull;
  const double sig = ep * invU;                  // sigmoid(h) = e^h/(1+e^h)
  return {lnTerm * lnTerm, lnTerm * sig};        // dF/dx = ln * sig
}

/// W-wide ekvF over a flat array: the same per-element op sequence as the
/// scalar ekvF, staged so the lane loops auto-vectorize; only the 128-entry
/// table lookup stays scalar.
template <int W>
inline void ekvFBlock(const double* x, double* f, double* df) {
  double h[W], xc[W], kd[W], r[W], scale[W], ep[W];
  std::uint64_t ki[W];
  for (int i = 0; i < W; ++i) {
    h[i] = 0.5 * x[i];
    xc[i] = h[i] < -708.0 ? -708.0 : (h[i] > 708.0 ? 708.0 : h[i]);
    kd[i] = xc[i] * fmx::kInvLn2N + fmx::kShift;
  }
  for (int i = 0; i < W; ++i) ki[i] = fmx::bitsOf(kd[i]);
  for (int i = 0; i < W; ++i) {
    const double k = kd[i] - fmx::kShift;
    r[i] = (xc[i] - k * fmx::kLn2NHi) - k * fmx::kLn2NLo;
  }
  for (int i = 0; i < W; ++i)  // gather stage
    scale[i] = fmx::fromBits(fmx::bitsOf(fmx::kExp2Tab[ki[i] & 127]) +
                             ((ki[i] >> 7) << 52));
  for (int i = 0; i < W; ++i) {
    const double r2 = r[i] * r[i];
    const double p =
        1.0 + r[i] + r2 * (0.5 + r[i] * (1.0 / 6.0) +
                           r2 * ((1.0 / 24.0) + r[i] * (1.0 / 120.0)));
    ep[i] = scale[i] * p;
  }
  double u[W], invU[W], m[W], kk[W];
  for (int i = 0; i < W; ++i) {
    u[i] = 1.0 + ep[i];
    invU[i] = 1.0 / u[i];
  }
  for (int i = 0; i < W; ++i) {
    const std::uint64_t uu = fmx::bitsOf(u[i]);
    const std::int64_t kRaw =
        static_cast<std::int64_t>((uu + fmx::kLogAdj) >> 52) - 1023;
    kk[i] = static_cast<double>(kRaw);
    m[i] = fmx::fromBits(uu - (static_cast<std::uint64_t>(kRaw) << 52));
  }
  for (int i = 0; i < W; ++i) {
    const double c = (ep[i] - (u[i] - 1.0)) * invU[i];
    const double s = (m[i] - 1.0) / (m[i] + 1.0);
    const double poly = 2.0 + fmx::log1pTail(s * s);
    const double lnFull =
        kk[i] * fmx::kLn2Hi + (s * poly + (c + kk[i] * fmx::kLn2Lo));
    const double lnTerm = (h[i] > 30.0) ? h[i] : lnFull;
    const double sig = ep[i] * invU[i];
    f[i] = lnTerm * lnTerm;
    df[i] = lnTerm * sig;
  }
}

constexpr double kMinArg = 0.05;  // body-effect sqrt clamp
const double kSqMinArg = std::sqrt(kMinArg);

}  // namespace

MosDeviceCtx makeMosCtx(const MosParams& params, MosType type,
                        const MosGeometry& geom, double tempK) {
  MosDeviceCtx c;
  c.sign = (type == MosType::kPmos) ? -1.0 : 1.0;
  c.vt = thermalVoltage(tempK);
  c.n = params.slopeN;
  const double weff = geom.w * geom.m;
  const double beta = params.kp * weff / geom.l;
  c.ispec = 2.0 * c.n * beta * c.vt * c.vt;
  c.sq0 = std::sqrt(params.phi);
  c.lambda = params.lambdaCoeff / geom.l;
  c.vth0 = params.vth0;
  c.gamma = params.gamma;
  c.phi = params.phi;
  return c;
}

MosOp evalMosCtx(const MosDeviceCtx& c, double vd, double vg, double vs,
                 double vb) {
  // PMOS is evaluated as its mirrored NMOS equivalent (all voltages negated);
  // the current negates on the way back while the derivatives keep their sign
  // (d(-I)/d(-V) = dI/dV).
  const double vdn = c.sign * vd;
  const double vgn = c.sign * vg;
  const double vsn = c.sign * vs;
  const double vbn = c.sign * vb;

  // Body effect on threshold (clamped so sqrt stays real and smooth enough).
  const double vsb = vsn - vbn;
  double vth = c.vth0;
  double dVthDvs = 0.0;
  const double arg = c.phi + vsb;
  if (arg > kMinArg) {
    const double sq = std::sqrt(arg);
    vth += c.gamma * (sq - c.sq0);
    dVthDvs = c.gamma / (2.0 * sq);
  } else {
    vth += c.gamma * (kSqMinArg - c.sq0);  // frozen below the clamp
  }

  // Pinch-off voltage referenced to bulk.
  const double vp = (vgn - vbn - vth) / c.n;
  const double xf = (vp - (vsn - vbn)) / c.vt;
  const double xr = (vp - (vdn - vbn)) / c.vt;
  const auto [ff, dff] = ekvF(xf);
  const auto [fr, dfr] = ekvF(xr);

  // Channel-length modulation on the net current.
  const double vds = vdn - vsn;
  const double clm = std::max(0.2, 1.0 + c.lambda * vds);
  const bool clmActive = (1.0 + c.lambda * vds) > 0.2;

  const double core = c.ispec * (ff - fr);
  const double ids = core * clm;

  // Chain rule into terminal voltages (all in the NMOS-equivalent frame).
  const double dXfDvg = (1.0 / c.n) / c.vt;
  const double dXrDvg = dXfDvg;
  const double dXfDvs = (-dVthDvs / c.n - 1.0) / c.vt;
  const double dXrDvs = (-dVthDvs / c.n) / c.vt;
  const double dXfDvd = 0.0;
  const double dXrDvd = -1.0 / c.vt;
  // vb enters via vp's -vb/n... and the explicit +vb in both x terms:
  // xf = (vp - vs + vb)/vt with vp containing -vb/n
  //   =>  d xf/d vb = (1 - 1/n + dVthDvs/n)/vt
  const double dXfDvb = (1.0 - 1.0 / c.n + dVthDvs / c.n) / c.vt;
  const double dXrDvb = dXfDvb;

  const double dCoreDvg = c.ispec * (dff * dXfDvg - dfr * dXrDvg);
  const double dCoreDvd = c.ispec * (dff * dXfDvd - dfr * dXrDvd);
  const double dCoreDvs = c.ispec * (dff * dXfDvs - dfr * dXrDvs);
  const double dCoreDvb = c.ispec * (dff * dXfDvb - dfr * dXrDvb);

  const double dClmDvd = clmActive ? c.lambda : 0.0;
  const double dClmDvs = clmActive ? -c.lambda : 0.0;

  MosOp op;
  op.ids = c.sign * ids;
  op.dIdVd = dCoreDvd * clm + core * dClmDvd;
  op.dIdVg = dCoreDvg * clm;
  op.dIdVs = dCoreDvs * clm + core * dClmDvs;
  op.dIdVb = dCoreDvb * clm;
  op.gm = std::abs(op.dIdVg);
  op.gds = std::abs(op.dIdVd);
  return op;
}

void evalMosBlock(const MosCtxBlock& c, const double* vd, const double* vg,
                  const double* vs, const double* vb, MosOpBlock& out) {
  constexpr int L = kSimLanes;
  double vdn[L], vgn[L], vsn[L], vbn[L], arg[L], vth[L], dVthDvs[L];
  double xf[L], xr[L];
  for (int l = 0; l < L; ++l) {
    vdn[l] = c.sign[l] * vd[l];
    vgn[l] = c.sign[l] * vg[l];
    vsn[l] = c.sign[l] * vs[l];
    vbn[l] = c.sign[l] * vb[l];
    arg[l] = c.phi[l] + (vsn[l] - vbn[l]);
  }
  for (int l = 0; l < L; ++l) {
    // Blend form of the scalar branch. sqrt is correctly rounded, so
    // sqrt(kMinArg) here is bit-identical to the scalar path's precomputed
    // kSqMinArg, and the one unconditional sqrt covers both arms; the
    // division runs unconditionally on a strictly-positive sq and only its
    // result is blended, which lets the lane loop if-convert and vectorize.
    const bool body = arg[l] > kMinArg;
    const double sq = std::sqrt(body ? arg[l] : kMinArg);
    const double dv = c.gamma[l] / (2.0 * sq);
    vth[l] = c.vth0[l] + c.gamma[l] * (sq - c.sq0[l]);
    dVthDvs[l] = body ? dv : 0.0;
  }
  for (int l = 0; l < L; ++l) {
    const double vp = (vgn[l] - vbn[l] - vth[l]) / c.n[l];
    xf[l] = (vp - (vsn[l] - vbn[l])) / c.vt[l];
    xr[l] = (vp - (vdn[l] - vbn[l])) / c.vt[l];
  }
  double xfr[2 * L], f[2 * L], df[2 * L];
  for (int l = 0; l < L; ++l) {
    xfr[l] = xf[l];
    xfr[L + l] = xr[l];
  }
  ekvFBlock<2 * L>(xfr, f, df);
  for (int l = 0; l < L; ++l) {
    const double ff = f[l], dff = df[l];
    const double fr = f[L + l], dfr = df[L + l];

    const double vds = vdn[l] - vsn[l];
    const double clmRaw = 1.0 + c.lambda[l] * vds;
    const double clm = std::max(0.2, clmRaw);
    const bool clmActive = clmRaw > 0.2;

    const double core = c.ispec[l] * (ff - fr);
    const double ids = core * clm;

    const double dXfDvg = (1.0 / c.n[l]) / c.vt[l];
    const double dXrDvg = dXfDvg;
    const double dXfDvs = (-dVthDvs[l] / c.n[l] - 1.0) / c.vt[l];
    const double dXrDvs = (-dVthDvs[l] / c.n[l]) / c.vt[l];
    const double dXfDvd = 0.0;
    const double dXrDvd = -1.0 / c.vt[l];
    const double dXfDvb =
        (1.0 - 1.0 / c.n[l] + dVthDvs[l] / c.n[l]) / c.vt[l];
    const double dXrDvb = dXfDvb;

    const double dCoreDvg = c.ispec[l] * (dff * dXfDvg - dfr * dXrDvg);
    const double dCoreDvd = c.ispec[l] * (dff * dXfDvd - dfr * dXrDvd);
    const double dCoreDvs = c.ispec[l] * (dff * dXfDvs - dfr * dXrDvs);
    const double dCoreDvb = c.ispec[l] * (dff * dXfDvb - dfr * dXrDvb);

    const double dClmDvd = clmActive ? c.lambda[l] : 0.0;
    const double dClmDvs = clmActive ? -c.lambda[l] : 0.0;

    out.ids[l] = c.sign[l] * ids;
    out.dIdVd[l] = dCoreDvd * clm + core * dClmDvd;
    out.dIdVg[l] = dCoreDvg * clm;
    out.dIdVs[l] = dCoreDvs * clm + core * dClmDvs;
    out.dIdVb[l] = dCoreDvb * clm;
    out.gm[l] = std::abs(out.dIdVg[l]);
    out.gds[l] = std::abs(out.dIdVd[l]);
  }
}

MosOp evalMos(const MosParams& params, MosType type, const MosGeometry& geom,
              double vd, double vg, double vs, double vb, double tempK) {
  return evalMosCtx(makeMosCtx(params, type, geom, tempK), vd, vg, vs, vb);
}

double gateCapacitance(const MosParams& params, const MosGeometry& geom) {
  return (2.0 / 3.0) * geom.w * geom.m * geom.l * params.cox * 1.3;
}

double drainCapacitance(const MosParams& params, const MosGeometry& geom) {
  return geom.w * geom.m * geom.l * params.cjArea * 40.0;  // junction proxy
}

}  // namespace trdse::sim
