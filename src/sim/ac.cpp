#include "sim/ac.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "linalg/lu.hpp"

namespace trdse::sim {

namespace {

void stampReal(linalg::Matrix& M, const Netlist& nl, NodeId a, NodeId b, double g) {
  if (a != kGround) {
    const std::size_t ia = nl.nodeIndex(a);
    M(ia, ia) += g;
    if (b != kGround) M(ia, nl.nodeIndex(b)) -= g;
  }
  if (b != kGround) {
    const std::size_t ib = nl.nodeIndex(b);
    M(ib, ib) += g;
    if (a != kGround) M(ib, nl.nodeIndex(a)) -= g;
  }
}

void addAt(linalg::Matrix& M, const Netlist& nl, NodeId r, NodeId c, double v) {
  if (r == kGround || c == kGround) return;
  M(nl.nodeIndex(r), nl.nodeIndex(c)) += v;
}

}  // namespace

AcSolver::AcSolver(const Netlist& netlist, const DcResult& op)
    : netlist_(netlist) {
  assert(op.converged && "AC analysis requires a converged operating point");
  const Netlist& nl = netlist_;
  const std::size_t n = nl.unknownCount();
  g_.resize(n, n);
  c_.resize(n, n);
  bReal_.assign(n, 0.0);

  for (const auto& r : nl.resistors()) stampReal(g_, nl, r.a, r.b, 1.0 / r.ohms);
  for (const auto& cap : nl.capacitors()) stampReal(c_, nl, cap.a, cap.b, cap.farads);

  for (const auto& g : nl.vccs()) {
    addAt(g_, nl, g.p, g.cp, g.gm);
    addAt(g_, nl, g.p, g.cn, -g.gm);
    addAt(g_, nl, g.n, g.cp, -g.gm);
    addAt(g_, nl, g.n, g.cn, g.gm);
  }

  // Diodes: small-signal conductance from the operating point.
  assert(op.diodeConductances.size() == nl.diodes().size());
  for (std::size_t k = 0; k < nl.diodes().size(); ++k) {
    const auto& d = nl.diodes()[k];
    stampReal(g_, nl, d.a, d.k, op.diodeConductances[k]);
  }

  // Inductors: branch equation v_p - v_n - jwL * i = 0. The jwL term lands
  // in the capacitance-like matrix (multiplied by jw per point) with a
  // negative L on the branch diagonal.
  for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
    const auto& ind = nl.inductors()[k];
    const std::size_t br = nl.inductorBranchIndex(k);
    if (ind.a != kGround) {
      g_(nl.nodeIndex(ind.a), br) += 1.0;
      g_(br, nl.nodeIndex(ind.a)) += 1.0;
    }
    if (ind.b != kGround) {
      g_(nl.nodeIndex(ind.b), br) -= 1.0;
      g_(br, nl.nodeIndex(ind.b)) -= 1.0;
    }
    c_(br, br) -= ind.henry;
  }

  // Linearized MOSFET: four-terminal VCCS from the DC Jacobian + parasitics.
  assert(op.mosOps.size() == nl.mosfets().size());
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& fet = nl.mosfets()[k];
    const MosOp& o = op.mosOps[k];
    addAt(g_, nl, fet.d, fet.d, o.dIdVd);
    addAt(g_, nl, fet.d, fet.g, o.dIdVg);
    addAt(g_, nl, fet.d, fet.s, o.dIdVs);
    addAt(g_, nl, fet.d, fet.b, o.dIdVb);
    addAt(g_, nl, fet.s, fet.d, -o.dIdVd);
    addAt(g_, nl, fet.s, fet.g, -o.dIdVg);
    addAt(g_, nl, fet.s, fet.s, -o.dIdVs);
    addAt(g_, nl, fet.s, fet.b, -o.dIdVb);

    const double cgg = gateCapacitance(fet.params, fet.geom);
    stampReal(c_, nl, fet.g, fet.s, 0.7 * cgg);
    stampReal(c_, nl, fet.g, fet.d, 0.3 * cgg);  // Miller path
    stampReal(c_, nl, fet.d, fet.b, drainCapacitance(fet.params, fet.geom));
  }

  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const std::size_t br = nl.vsourceBranchIndex(k);
    if (src.p != kGround) {
      g_(nl.nodeIndex(src.p), br) += 1.0;
      g_(br, nl.nodeIndex(src.p)) += 1.0;
    }
    if (src.n != kGround) {
      g_(nl.nodeIndex(src.n), br) -= 1.0;
      g_(br, nl.nodeIndex(src.n)) -= 1.0;
    }
    bReal_[br] = src.vac;
  }

  for (std::size_t k = 0; k < nl.vcvs().size(); ++k) {
    const auto& e = nl.vcvs()[k];
    const std::size_t br = nl.vcvsBranchIndex(k);
    if (e.p != kGround) {
      g_(nl.nodeIndex(e.p), br) += 1.0;
      g_(br, nl.nodeIndex(e.p)) += 1.0;
    }
    if (e.n != kGround) {
      g_(nl.nodeIndex(e.n), br) -= 1.0;
      g_(br, nl.nodeIndex(e.n)) -= 1.0;
    }
    if (e.cp != kGround) g_(br, nl.nodeIndex(e.cp)) -= e.gain;
    if (e.cn != kGround) g_(br, nl.nodeIndex(e.cn)) += e.gain;
  }

  for (const auto& src : nl.isources()) {
    if (src.iac == 0.0) continue;
    if (src.p != kGround) bReal_[nl.nodeIndex(src.p)] -= src.iac;
    if (src.n != kGround) bReal_[nl.nodeIndex(src.n)] += src.iac;
  }
}

linalg::ComplexVector AcSolver::solveAt(double freqHz) const {
  const std::size_t n = g_.rows();
  const double w = 2.0 * std::numbers::pi * freqHz;
  linalg::ComplexMatrix A(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      A(r, c) = {g_(r, c), w * c_(r, c)};
  linalg::ComplexVector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = bReal_[i];
  auto x = linalg::LuSolver<std::complex<double>>::solveSystem(A, b);
  if (!x) return linalg::ComplexVector(n, {0.0, 0.0});
  return *x;
}

linalg::ComplexVector AcSolver::solveCurrentInjection(double freqHz, NodeId from,
                                                      NodeId to) const {
  const std::size_t n = g_.rows();
  const double w = 2.0 * std::numbers::pi * freqHz;
  linalg::ComplexMatrix A(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      A(r, c) = {g_(r, c), w * c_(r, c)};
  // Unit current from -> to, independent sources dead (b = injection only;
  // voltage-source branch rows keep their zero RHS, i.e. AC shorts).
  linalg::ComplexVector b(n, {0.0, 0.0});
  if (from != kGround) b[netlist_.nodeIndex(from)] -= 1.0;
  if (to != kGround) b[netlist_.nodeIndex(to)] += 1.0;
  auto x = linalg::LuSolver<std::complex<double>>::solveSystem(A, b);
  if (!x) return linalg::ComplexVector(n, {0.0, 0.0});
  return *x;
}

std::complex<double> AcSolver::nodeVoltage(const linalg::ComplexVector& x,
                                           NodeId n) const {
  if (n == kGround) return {0.0, 0.0};
  return x[netlist_.nodeIndex(n)];
}

std::vector<double> AcSolver::logSpace(double fStart, double fStop,
                                       std::size_t points) {
  assert(fStart > 0.0 && fStop > fStart && points >= 2);
  std::vector<double> f(points);
  const double l0 = std::log10(fStart);
  const double l1 = std::log10(fStop);
  for (std::size_t i = 0; i < points; ++i)
    f[i] = std::pow(10.0, l0 + (l1 - l0) * static_cast<double>(i) /
                              static_cast<double>(points - 1));
  return f;
}

std::vector<std::complex<double>> AcSolver::sweep(const std::vector<double>& freqs,
                                                  NodeId out) const {
  std::vector<std::complex<double>> h;
  h.reserve(freqs.size());
  for (double f : freqs) h.push_back(nodeVoltage(solveAt(f), out));
  return h;
}

double magnitudeDb(const std::complex<double>& h) {
  const double m = std::abs(h);
  if (m < 1e-20) return -400.0;
  return 20.0 * std::log10(m);
}

std::vector<double> unwrappedPhaseDeg(const std::vector<std::complex<double>>& h) {
  std::vector<double> ph(h.size());
  constexpr double kRadToDeg = 180.0 / std::numbers::pi;
  double prev = 0.0;
  double offset = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    double p = std::arg(h[i]) * kRadToDeg;
    if (i > 0) {
      while (p + offset - prev > 180.0) offset -= 360.0;
      while (p + offset - prev < -180.0) offset += 360.0;
    }
    ph[i] = p + offset;
    prev = ph[i];
  }
  return ph;
}

LoopMetrics analyzeLoop(const std::vector<double>& freqs,
                        const std::vector<std::complex<double>>& h) {
  assert(freqs.size() == h.size() && !freqs.empty());
  LoopMetrics m;
  m.dcGainDb = magnitudeDb(h.front());
  const std::vector<double> phase = unwrappedPhaseDeg(h);

  for (std::size_t i = 0; i + 1 < h.size(); ++i) {
    const double m0 = magnitudeDb(h[i]);
    const double m1 = magnitudeDb(h[i + 1]);
    if (m0 >= 0.0 && m1 < 0.0) {
      // Log-frequency interpolation of the 0 dB crossing.
      const double t = m0 / (m0 - m1);
      const double lf = std::log10(freqs[i]) +
                        t * (std::log10(freqs[i + 1]) - std::log10(freqs[i]));
      m.unityGainHz = std::pow(10.0, lf);
      const double phAtCross = phase[i] + t * (phase[i + 1] - phase[i]);
      // Phase margin relative to the DC phase reference (inverting amps
      // start at ±180°): PM = 180 - |phase shift from DC|.
      const double shift = std::abs(phAtCross - phase.front());
      m.phaseMarginDeg = 180.0 - shift;
      m.crossesUnity = true;
      return m;
    }
  }
  return m;
}

}  // namespace trdse::sim
