// Smooth EKV-flavoured MOSFET large-signal model with analytic derivatives.
//
// The interpolation function F(x) = ln^2(1 + e^{x/2}) is C-infinity across
// subthreshold / triode / saturation, which keeps the Newton iteration of the
// DC solver well-conditioned — the reason we prefer it to a piecewise
// level-1 model. Channel-length modulation provides the finite output
// conductance the opamp gain measurements depend on.
//
// Two evaluation paths share one set of compiled kernels in mosfet.cpp:
//  - scalar: evalMos / evalMosCtx, one operating point at a time;
//  - batched: evalMosBlock, kSimLanes operating points in AoSoA layout.
// Both run the exact same per-lane floating-point op sequence (the blend arms
// of the block kernel compute the same expressions the scalar branches do,
// and the TU is compiled with FP contraction off), so a lane of the block is
// bitwise identical to the scalar call. tests/sim_batch_test.cpp locks this.
#pragma once

#include "sim/process.hpp"

namespace trdse::sim {

/// Lane width of the batched operating-point kernels. Four doubles fill one
/// AVX2 register; on narrower targets the lane loops degrade gracefully to
/// scalar code with identical results.
inline constexpr int kSimLanes = 4;

/// Large-signal operating point of one device. `ids` is the current entering
/// the drain terminal and leaving at the source (negative for a conducting
/// PMOS). The d* fields are the partial derivatives of ids w.r.t. the
/// terminal voltages — exactly what the MNA Newton stamp needs.
struct MosOp {
  double ids = 0.0;
  double dIdVd = 0.0;
  double dIdVg = 0.0;
  double dIdVs = 0.0;
  double dIdVb = 0.0;
  double gm = 0.0;   ///< |dIds/dVg|, for small-signal measurements
  double gds = 0.0;  ///< |dIds/dVd|
};

/// Geometry of one instance (multiplicity folds into the effective width).
struct MosGeometry {
  double w = 1e-6;  ///< [m]
  double l = 100e-9;
  double m = 1.0;   ///< parallel multiplier
};

/// Voltage-independent per-device context: everything evalMos derives from
/// (params, type, geom, tempK) hoisted out of the Newton loop. Building it
/// once per device per operating point and replaying it each iteration is
/// what makes the batched path cheap.
struct MosDeviceCtx {
  double sign = 1.0;   ///< -1 for PMOS (mirrored-NMOS evaluation)
  double vt = 0.0;     ///< thermal voltage [V]
  double n = 1.0;      ///< subthreshold slope factor
  double ispec = 0.0;  ///< 2 n beta vt^2
  double sq0 = 0.0;    ///< sqrt(phi)
  double lambda = 0.0;
  double vth0 = 0.0;
  double gamma = 0.0;
  double phi = 0.0;
  // Divides of ctx-only values, hoisted out of the per-iteration kernels.
  // Each is the verbatim expression the kernel previously evaluated inline,
  // so reading the field yields the same bits the in-loop divide produced.
  double invN = 1.0;      ///< 1.0 / n
  double invVtN = 0.0;    ///< (1.0 / n) / vt  — d xf / d vg
  double negInvVt = 0.0;  ///< -1.0 / vt       — d xr / d vd
};

MosDeviceCtx makeMosCtx(const MosParams& params, MosType type,
                        const MosGeometry& geom, double tempK);

/// Scalar kernel on a prebuilt context.
MosOp evalMosCtx(const MosDeviceCtx& ctx, double vd, double vg, double vs,
                 double vb);

/// AoSoA context / result blocks for kSimLanes operating points of the same
/// netlist device (lanes differ in sizing and/or PVT corner).
struct MosCtxBlock {
  double sign[kSimLanes];
  double vt[kSimLanes];
  double n[kSimLanes];
  double ispec[kSimLanes];
  double sq0[kSimLanes];
  double lambda[kSimLanes];
  double vth0[kSimLanes];
  double gamma[kSimLanes];
  double phi[kSimLanes];
  double invN[kSimLanes];
  double invVtN[kSimLanes];
  double negInvVt[kSimLanes];
};

struct MosOpBlock {
  double ids[kSimLanes];
  double dIdVd[kSimLanes];
  double dIdVg[kSimLanes];
  double dIdVs[kSimLanes];
  double dIdVb[kSimLanes];
  double gm[kSimLanes];
  double gds[kSimLanes];
};

/// Batched kernel: lane l of `out` is bitwise identical to
/// evalMosCtx(ctx-of-lane-l, vd[l], vg[l], vs[l], vb[l]).
void evalMosBlock(const MosCtxBlock& ctx, const double* vd, const double* vg,
                  const double* vs, const double* vb, MosOpBlock& out);

/// Evaluate the model at terminal voltages (vd, vg, vs, vb) against bulk
/// reference; `params` must already be PVT-adjusted (see applyPvt) and
/// `tempK` sets the thermal voltage. Convenience wrapper over makeMosCtx +
/// evalMosCtx.
MosOp evalMos(const MosParams& params, MosType type, const MosGeometry& geom,
              double vd, double vg, double vs, double vb, double tempK);

/// Effective gate capacitance (to ground, lumped) used for transient/AC
/// parasitics: Cgs ~ (2/3) W L Cox * m plus overlap-ish margin.
double gateCapacitance(const MosParams& params, const MosGeometry& geom);

/// Drain junction capacitance proxy.
double drainCapacitance(const MosParams& params, const MosGeometry& geom);

}  // namespace trdse::sim
