// Smooth EKV-flavoured MOSFET large-signal model with analytic derivatives.
//
// The interpolation function F(x) = ln^2(1 + e^{x/2}) is C-infinity across
// subthreshold / triode / saturation, which keeps the Newton iteration of the
// DC solver well-conditioned — the reason we prefer it to a piecewise
// level-1 model. Channel-length modulation provides the finite output
// conductance the opamp gain measurements depend on.
#pragma once

#include "sim/process.hpp"

namespace trdse::sim {

/// Large-signal operating point of one device. `ids` is the current entering
/// the drain terminal and leaving at the source (negative for a conducting
/// PMOS). The d* fields are the partial derivatives of ids w.r.t. the
/// terminal voltages — exactly what the MNA Newton stamp needs.
struct MosOp {
  double ids = 0.0;
  double dIdVd = 0.0;
  double dIdVg = 0.0;
  double dIdVs = 0.0;
  double dIdVb = 0.0;
  double gm = 0.0;   ///< |dIds/dVg|, for small-signal measurements
  double gds = 0.0;  ///< |dIds/dVd|
};

/// Geometry of one instance (multiplicity folds into the effective width).
struct MosGeometry {
  double w = 1e-6;  ///< [m]
  double l = 100e-9;
  double m = 1.0;   ///< parallel multiplier
};

/// Evaluate the model at terminal voltages (vd, vg, vs, vb) against bulk
/// reference; `params` must already be PVT-adjusted (see applyPvt) and
/// `tempK` sets the thermal voltage.
MosOp evalMos(const MosParams& params, MosType type, const MosGeometry& geom,
              double vd, double vg, double vs, double vb, double tempK);

/// Effective gate capacitance (to ground, lumped) used for transient/AC
/// parasitics: Cgs ~ (2/3) W L Cox * m plus overlap-ish margin.
double gateCapacitance(const MosParams& params, const MosGeometry& geom);

/// Drain junction capacitance proxy.
double drainCapacitance(const MosParams& params, const MosGeometry& geom);

}  // namespace trdse::sim
