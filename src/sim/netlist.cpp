#include "sim/netlist.hpp"

namespace trdse::sim {

NodeId Netlist::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = names_.find(name);
  if (it != names_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodeCount_++);
  names_.emplace(name, id);
  return id;
}

NodeId Netlist::internalNode() {
  return static_cast<NodeId>(nodeCount_++);
}

NodeId Netlist::findNode(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = names_.find(name);
  return it == names_.end() ? -1 : it->second;
}

void Netlist::addResistor(NodeId a, NodeId b, double ohms) {
  assert(ohms > 0.0);
  resistors_.push_back({a, b, ohms});
}

void Netlist::addCapacitor(NodeId a, NodeId b, double farads) {
  assert(farads >= 0.0);
  capacitors_.push_back({a, b, farads});
}

std::size_t Netlist::addVSource(NodeId p, NodeId n, double vdc, double vac) {
  vsources_.push_back({p, n, vdc, vac});
  return vsources_.size() - 1;
}

void Netlist::addISource(NodeId p, NodeId n, double idc, double iac) {
  isources_.push_back({p, n, idc, iac});
}

std::size_t Netlist::addVcvs(NodeId p, NodeId n, NodeId cp, NodeId cn, double gain) {
  vcvs_.push_back({p, n, cp, cn, gain});
  return vcvs_.size() - 1;
}

void Netlist::addVccs(NodeId p, NodeId n, NodeId cp, NodeId cn, double gm) {
  vccs_.push_back({p, n, cp, cn, gm});
}

void Netlist::addDiode(NodeId a, NodeId k, double isat, double emission) {
  assert(isat > 0.0 && emission > 0.0);
  diodes_.push_back({a, k, isat, emission});
}

std::size_t Netlist::addInductor(NodeId a, NodeId b, double henry) {
  assert(henry > 0.0);
  inductors_.push_back({a, b, henry});
  return inductors_.size() - 1;
}

std::size_t Netlist::addMosfet(std::string name, NodeId d, NodeId g, NodeId s,
                               NodeId b, MosType type, const MosGeometry& geom,
                               const MosParams& params) {
  MosInstance inst;
  inst.name = std::move(name);
  inst.d = d;
  inst.g = g;
  inst.s = s;
  inst.b = b;
  inst.type = type;
  inst.geom = geom;
  inst.params = params;
  mosfets_.push_back(std::move(inst));
  return mosfets_.size() - 1;
}

std::size_t Netlist::unknownCount() const {
  return (nodeCount_ - 1) + branchCount();
}

}  // namespace trdse::sim
