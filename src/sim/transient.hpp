// Fixed-step trapezoidal transient analysis with a Newton solve per step.
//
// Capacitors use the trapezoidal companion model (geq = 2C/h); MOSFETs are
// re-linearized each Newton iteration, with their parasitic capacitances
// included as fixed linear capacitors. This is what the ICO experiment uses
// to measure oscillation frequency from node-crossing periods.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "sim/dc.hpp"
#include "sim/netlist.hpp"

namespace trdse::sim {

struct TransientOptions {
  double tStop = 1e-9;
  double dt = 1e-12;
  int maxNewtonIterations = 50;
  double tolAbs = 1e-6;
  bool includeDeviceCaps = true;
};

struct Waveform {
  std::vector<double> t;
  std::vector<double> v;
  bool valid = false;
};

struct TransientResult {
  bool completed = false;
  std::vector<double> times;
  /// times.size() x nodeCount matrix of node voltages (ground column incl.).
  std::vector<linalg::Vector> voltages;
  /// times.size() x (vsources + vcvs) branch currents (empty at t=0 entry).
  std::vector<linalg::Vector> branchCurrents;

  Waveform waveform(NodeId n) const;

  /// Mean |current| through the idx-th voltage source over the trailing
  /// fraction of the run — the ICO supply-power measurement.
  double meanVsourceCurrent(std::size_t vsrcIdx, double tailFraction = 0.5) const;
};

class TransientSolver {
 public:
  TransientSolver(const Netlist& netlist, TransientOptions options = {});

  /// Integrate from the given initial node voltages (e.g. a DC OP, possibly
  /// perturbed to kick an oscillator out of its metastable point).
  TransientResult run(const linalg::Vector& initialVoltages) const;

 private:
  const Netlist& netlist_;
  TransientOptions options_;
};

/// Rising-edge crossing times of a waveform through `threshold`
/// (linearly interpolated).
std::vector<double> risingCrossings(const Waveform& w, double threshold);

/// Estimate oscillation frequency from the median period between rising
/// crossings; returns 0 when fewer than `minPeriods` full periods exist.
double estimateFrequency(const Waveform& w, double threshold,
                         std::size_t minPeriods = 3);

/// Peak-to-peak amplitude over the trailing fraction of the waveform.
double steadyStateAmplitude(const Waveform& w, double tailFraction = 0.5);

}  // namespace trdse::sim
