// Local (within-die) device mismatch via the Pelgrom model: threshold and
// current-factor deviations with sigma proportional to 1/sqrt(W L m).
//
// The paper's industrial deployment signs off over PVT corners; real silicon
// additionally varies device-to-device. This transform perturbs each MOSFET
// instance of an already-built netlist so Monte Carlo yield analysis can run
// on top of any circuit builder that exposes its testbench.
#pragma once

#include <random>

#include "sim/netlist.hpp"

namespace trdse::sim {

struct MismatchParams {
  double avt = 3.5e-9;   ///< Vth Pelgrom coefficient [V*m] (~3.5 mV*um)
  double akp = 0.01e-6;  ///< relative kp coefficient [m] (~1 %*um)
};

/// Perturb every MOSFET's vth0 and kp in place with independent Gaussian
/// mismatch draws. Deterministic for a given rng state.
void applyMismatch(Netlist& netlist, const MismatchParams& params,
                   std::mt19937_64& rng);

}  // namespace trdse::sim
