// Batched operating-point backend: DC, transient, and AC engines that drive
// kSimLanes (sizing, corner) operating points through one Newton/LU pipeline.
//
// The contract every engine here honors is *bitwise lane equivalence*: lane l
// of a batch reproduces, bit for bit, what the scalar solver (DcSolver,
// TransientSolver, AcSolver) produces for that lane's netlist alone. Three
// mechanisms make that hold:
//   1. Device cards are evaluated through the shared block kernels
//      (evalMosBlock / evalDiodeBlock), whose lanes are bitwise identical to
//      the scalar calls by construction (see sim/mosfet.hpp).
//   2. Stamps, Newton updates, and convergence tests replicate the scalar
//      solvers' expressions literally, per lane, in the scalar solvers' stamp
//      order; the involved translation units are compiled with FP contraction
//      off so the same source expression cannot fuse differently.
//   3. The lane-blocked LU factors each lane with the scalar pivoting rule
//      (per-lane pivot scan and row swaps) while vectorizing the elimination
//      across lanes — arithmetic per lane is unchanged.
//
// Lanes are independent: a lane's trajectory never depends on what the other
// lanes hold, so partially-filled batches (null lanes) and lanes that freeze
// early (converged / failed) are safe. tests/sim_batch_test.cpp locks the
// equivalence over every registry circuit, corner set, and thread count.
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <memory>

#include "linalg/matrix.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/mosfet.hpp"
#include "sim/netlist.hpp"
#include "sim/transient.hpp"

namespace trdse::sim {

/// Whether two netlists can share one batch: identical MNA structure (node
/// count and every device's connectivity, in the same order). Element values,
/// device parameters, and temperature may differ — that is what the lanes are
/// for.
bool sameTopology(const Netlist& a, const Netlist& b);

/// Batched DC operating point over up to kSimLanes netlists of one topology.
/// Null lanes are skipped (their result stays default-constructed). Lane l of
/// the result is bitwise identical to
///   DcSolver(*nls[l], opts).solve(guesses[l]).
/// Each lane runs the scalar solver's full convergence ladder (plain Newton,
/// gmin stepping, source stepping) as an independent state machine; lanes at
/// different ladder stages still share each lockstep iteration's block device
/// evaluation and lane-blocked LU.
std::array<DcResult, kSimLanes> solveDcBatch(
    const std::array<const Netlist*, kSimLanes>& nls,
    const std::array<const linalg::Vector*, kSimLanes>& guesses,
    const DcOptions& opts = {});

/// Batched trapezoidal transient with an incremental stepping API. Lanes run
/// in lockstep (same dt, same step count); within a time step each lane's
/// Newton iteration freezes independently on its own convergence test.
///
/// step(k) followed by step(n - k) is state-identical to step(n) — the
/// companion states, voltages, and recorded traces carry over exactly — which
/// is what lets a consumer interleave lanes with other work. Lane l's result
/// is bitwise identical to TransientSolver(*nls[l], opts).run(*initial[l]);
/// a lane whose Newton fails (or whose matrix goes singular) stops recording
/// at that step with completed == false, exactly like the scalar solver.
class TransientBatch {
 public:
  /// `nls[l] == nullptr` disables lane l. Active lanes must share topology
  /// and each needs an initial node-voltage vector of size nodeCount().
  TransientBatch(const std::array<const Netlist*, kSimLanes>& nls,
                 const TransientOptions& opts,
                 const std::array<const linalg::Vector*, kSimLanes>& initial);
  ~TransientBatch();
  TransientBatch(const TransientBatch&) = delete;
  TransientBatch& operator=(const TransientBatch&) = delete;

  /// Total accepted steps a full run performs (tStop / dt).
  std::size_t totalSteps() const;
  /// Steps advanced so far (for live lanes; dead lanes stopped earlier).
  std::size_t stepsDone() const;
  /// Advance up to `n` further lockstep time steps.
  void step(std::size_t n);
  /// Run to completion.
  void run();
  /// Lane result so far; completed == true only after a full run.
  const TransientResult& result(int lane) const;
  /// Move a lane's result out (the lane must not be stepped afterwards).
  TransientResult takeResult(int lane);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Batched small-signal AC over up to kSimLanes operating points. Builds the
/// per-lane G/C/b stamps through the scalar AcSolver (identical matrices by
/// construction) and solves every frequency point with a lane-blocked complex
/// LU over split re/im planes and persistent workspaces — no per-frequency
/// allocation.
///
/// Lane equivalence: the complex arithmetic is the naive schoolbook formula,
/// which is what std::complex performs unless an intermediate turns NaN (the
/// Annex-G recovery path). solveAt() therefore reports per-lane finiteness;
/// a lane flagged non-finite must be redone through the scalar AcSolver —
/// whose recovered values are then the shared truth (see laneFinite()).
class AcBatch {
 public:
  /// `ops[l] == nullptr` disables lane l; active lanes need a converged
  /// DcResult for their netlist, exactly like the scalar AcSolver.
  AcBatch(const std::array<const Netlist*, kSimLanes>& nls,
          const std::array<const DcResult*, kSimLanes>& ops);
  ~AcBatch();
  AcBatch(const AcBatch&) = delete;
  AcBatch& operator=(const AcBatch&) = delete;

  /// Solve (G + jωC) x = b on every active lane at one frequency. A lane
  /// whose factorization is numerically singular yields a zero solution
  /// vector, matching AcSolver::solveAt.
  void solveAt(double freqHz);

  /// Complex node voltage of the latest solveAt() solution.
  std::complex<double> nodeVoltage(int lane, NodeId n) const;

  /// Whether every solveAt() so far kept lane `lane` finite. When false the
  /// batched lane may have diverged from std::complex's NaN-recovery
  /// semantics: recompute that lane with the scalar AcSolver.
  bool laneFinite(int lane) const;

  /// The per-lane scalar solver the stamps were built with (null for
  /// inactive lanes) — the redo path for non-finite lanes.
  const AcSolver* laneSolver(int lane) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trdse::sim
