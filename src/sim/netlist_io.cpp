#include "sim/netlist_io.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace trdse::sim {

namespace {

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

/// "w=2u" -> ("w", 2e-6); returns empty key when not key=value shaped.
std::pair<std::string, std::string> splitKeyValue(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) return {"", ""};
  return {toLower(token.substr(0, eq)), token.substr(eq + 1)};
}

}  // namespace

std::optional<double> parseSpiceValue(const std::string& token) {
  if (token.empty()) return std::nullopt;
  std::size_t pos = 0;
  double base = 0.0;
  try {
    base = std::stod(token, &pos);
  } catch (...) {
    return std::nullopt;
  }
  std::string suffix = toLower(token.substr(pos));
  // Strip a trailing unit word ("2.2kohm", "10pf").
  static const char* kUnits[] = {"ohm", "f", "h", "v", "a", "s", "hz"};
  double scale = 1.0;
  if (suffix.rfind("meg", 0) == 0) {
    scale = 1e6;
    suffix = suffix.substr(3);
  } else if (!suffix.empty()) {
    switch (suffix.front()) {
      case 't':
        scale = 1e12;
        suffix = suffix.substr(1);
        break;
      case 'g':
        scale = 1e9;
        suffix = suffix.substr(1);
        break;
      case 'k':
        scale = 1e3;
        suffix = suffix.substr(1);
        break;
      case 'm':
        scale = 1e-3;
        suffix = suffix.substr(1);
        break;
      case 'u':
        scale = 1e-6;
        suffix = suffix.substr(1);
        break;
      case 'n':
        scale = 1e-9;
        suffix = suffix.substr(1);
        break;
      case 'p':
        scale = 1e-12;
        suffix = suffix.substr(1);
        break;
      case 'f':
        // 'f' alone could be femto or the farad unit; treat as femto only
        // when it is not a bare unit word.
        scale = 1e-15;
        suffix = suffix.substr(1);
        break;
      default:
        break;
    }
  }
  if (!suffix.empty()) {
    const bool isUnit = std::any_of(std::begin(kUnits), std::end(kUnits),
                                    [&](const char* u) { return suffix == u; });
    if (!isUnit) return std::nullopt;
  }
  return base * scale;
}

ParseResult parseNetlist(const std::string& text, const ProcessCard& card,
                         const PvtCorner& corner) {
  ParseResult result;
  Netlist nl;
  nl.tempK = corner.tempK();
  const MosParams nmos = applyPvt(card.nmos, MosType::kNmos, corner, card.tnomK);
  const MosParams pmos = applyPvt(card.pmos, MosType::kPmos, corner, card.tnomK);

  auto fail = [&](std::size_t line, std::string msg) {
    result.error = {line, std::move(msg)};
    return result;
  };

  std::istringstream is(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto hash = line.find_first_of("*;");
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string head = toLower(tokens[0]);

    if (head == ".end") break;
    if (head == ".temp") {
      if (tokens.size() < 2) return fail(lineNo, ".temp needs a value");
      const auto t = parseSpiceValue(tokens[1]);
      if (!t) return fail(lineNo, "bad .temp value");
      nl.tempK = *t + 273.15;
      continue;
    }
    if (head.front() == '.') continue;  // unknown directives are ignored

    auto node = [&](const std::string& name) { return nl.node(name); };
    auto needValue = [&](std::size_t idx) -> std::optional<double> {
      if (idx >= tokens.size()) return std::nullopt;
      return parseSpiceValue(tokens[idx]);
    };

    switch (head.front()) {
      case 'r': {
        const auto v = needValue(3);
        if (tokens.size() < 4 || !v || *v <= 0.0)
          return fail(lineNo, "R card: R<name> n+ n- value");
        nl.addResistor(node(tokens[1]), node(tokens[2]), *v);
        break;
      }
      case 'c': {
        const auto v = needValue(3);
        if (tokens.size() < 4 || !v || *v < 0.0)
          return fail(lineNo, "C card: C<name> n+ n- value");
        nl.addCapacitor(node(tokens[1]), node(tokens[2]), *v);
        break;
      }
      case 'l': {
        const auto v = needValue(3);
        if (tokens.size() < 4 || !v || *v <= 0.0)
          return fail(lineNo, "L card: L<name> n+ n- value");
        nl.addInductor(node(tokens[1]), node(tokens[2]), *v);
        break;
      }
      case 'v': {
        const auto v = needValue(3);
        if (tokens.size() < 4 || !v) return fail(lineNo, "V card: V<name> n+ n- dc [ac mag]");
        double ac = 0.0;
        if (tokens.size() >= 6 && toLower(tokens[4]) == "ac") {
          const auto a = parseSpiceValue(tokens[5]);
          if (!a) return fail(lineNo, "bad ac magnitude");
          ac = *a;
        }
        nl.addVSource(node(tokens[1]), node(tokens[2]), *v, ac);
        break;
      }
      case 'i': {
        const auto v = needValue(3);
        if (tokens.size() < 4 || !v) return fail(lineNo, "I card: I<name> n+ n- dc [ac mag]");
        double ac = 0.0;
        if (tokens.size() >= 6 && toLower(tokens[4]) == "ac") {
          const auto a = parseSpiceValue(tokens[5]);
          if (!a) return fail(lineNo, "bad ac magnitude");
          ac = *a;
        }
        nl.addISource(node(tokens[1]), node(tokens[2]), *v, ac);
        break;
      }
      case 'e': {
        const auto v = needValue(5);
        if (tokens.size() < 6 || !v) return fail(lineNo, "E card: E<name> p n cp cn gain");
        nl.addVcvs(node(tokens[1]), node(tokens[2]), node(tokens[3]),
                   node(tokens[4]), *v);
        break;
      }
      case 'g': {
        const auto v = needValue(5);
        if (tokens.size() < 6 || !v) return fail(lineNo, "G card: G<name> p n cp cn gm");
        nl.addVccs(node(tokens[1]), node(tokens[2]), node(tokens[3]),
                   node(tokens[4]), *v);
        break;
      }
      case 'd': {
        if (tokens.size() < 3) return fail(lineNo, "D card: D<name> a k [is=val]");
        double isat = 1e-14;
        for (std::size_t i = 3; i < tokens.size(); ++i) {
          const auto [key, val] = splitKeyValue(tokens[i]);
          if (key == "is") {
            const auto v = parseSpiceValue(val);
            if (!v || *v <= 0.0) return fail(lineNo, "bad is= value");
            isat = *v;
          }
        }
        nl.addDiode(node(tokens[1]), node(tokens[2]), isat);
        break;
      }
      case 'm': {
        if (tokens.size() < 6)
          return fail(lineNo, "M card: M<name> d g s b <nmos|pmos> w=.. l=..");
        const std::string type = toLower(tokens[5]);
        if (type != "nmos" && type != "pmos")
          return fail(lineNo, "MOSFET type must be nmos or pmos");
        MosGeometry geom;
        geom.w = 0.0;
        geom.l = 0.0;
        for (std::size_t i = 6; i < tokens.size(); ++i) {
          const auto [key, val] = splitKeyValue(tokens[i]);
          const auto v = parseSpiceValue(val);
          if (key.empty() || !v) return fail(lineNo, "bad MOSFET parameter: " + tokens[i]);
          if (key == "w") geom.w = *v;
          if (key == "l") geom.l = *v;
          if (key == "m") geom.m = *v;
        }
        if (geom.w <= 0.0 || geom.l <= 0.0)
          return fail(lineNo, "MOSFET needs positive w= and l=");
        nl.addMosfet(tokens[0], node(tokens[1]), node(tokens[2]), node(tokens[3]),
                     node(tokens[4]), type == "nmos" ? MosType::kNmos : MosType::kPmos,
                     geom, type == "nmos" ? nmos : pmos);
        break;
      }
      default:
        return fail(lineNo, "unknown card: " + tokens[0]);
    }
  }
  result.netlist = std::move(nl);
  return result;
}

std::string writeNetlist(const Netlist& netlist) {
  std::ostringstream os;
  os << "* written by trdse::sim::writeNetlist\n";
  std::size_t n = 0;
  for (const auto& r : netlist.resistors())
    os << "R" << n++ << " " << r.a << " " << r.b << " " << r.ohms << "\n";
  n = 0;
  for (const auto& c : netlist.capacitors())
    os << "C" << n++ << " " << c.a << " " << c.b << " " << c.farads << "\n";
  n = 0;
  for (const auto& l : netlist.inductors())
    os << "L" << n++ << " " << l.a << " " << l.b << " " << l.henry << "\n";
  n = 0;
  for (const auto& v : netlist.vsources()) {
    os << "V" << n++ << " " << v.p << " " << v.n << " " << v.vdc;
    if (v.vac != 0.0) os << " ac " << v.vac;
    os << "\n";
  }
  n = 0;
  for (const auto& i : netlist.isources()) {
    os << "I" << n++ << " " << i.p << " " << i.n << " " << i.idc;
    if (i.iac != 0.0) os << " ac " << i.iac;
    os << "\n";
  }
  n = 0;
  for (const auto& e : netlist.vcvs())
    os << "E" << n++ << " " << e.p << " " << e.n << " " << e.cp << " " << e.cn
       << " " << e.gain << "\n";
  n = 0;
  for (const auto& g : netlist.vccs())
    os << "G" << n++ << " " << g.p << " " << g.n << " " << g.cp << " " << g.cn
       << " " << g.gm << "\n";
  n = 0;
  for (const auto& d : netlist.diodes())
    os << "D" << n++ << " " << d.a << " " << d.k << " is=" << d.isat << "\n";
  for (const auto& m : netlist.mosfets())
    os << m.name << " " << m.d << " " << m.g << " " << m.s << " " << m.b << " "
       << (m.type == MosType::kNmos ? "nmos" : "pmos") << " w=" << m.geom.w
       << " l=" << m.geom.l << " m=" << m.geom.m << "\n";
  os << ".end\n";
  return os.str();
}

}  // namespace trdse::sim
