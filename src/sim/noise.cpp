#include "sim/noise.hpp"

#include <cmath>

namespace trdse::sim {

namespace {
constexpr double kBoltzmann = 1.380649e-23;
constexpr double kElectronCharge = 1.602176634e-19;
}  // namespace

NoiseAnalyzer::NoiseAnalyzer(const Netlist& netlist, const DcResult& op,
                             NoiseOptions options)
    : netlist_(netlist), op_(op), options_(options), ac_(netlist, op) {}

double NoiseAnalyzer::mosChannelPsd(const MosOp& op, const MosInstance& fet,
                                    double freq) const {
  const double thermal =
      4.0 * kBoltzmann * netlist_.tempK * options_.mosGamma * op.gm;
  double flicker = 0.0;
  if (options_.includeFlicker && freq > 0.0) {
    const double coxArea =
        fet.params.cox * fet.geom.w * fet.geom.m * fet.geom.l;
    if (coxArea > 0.0)
      flicker = options_.flickerKf * op.gm * op.gm / (coxArea * freq);
  }
  return thermal + flicker;
}

NoiseResult NoiseAnalyzer::outputNoise(const std::vector<double>& freqs,
                                       NodeId out) const {
  NoiseResult r;
  r.freqs = freqs;
  r.outputPsd.assign(freqs.size(), 0.0);

  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const double f = freqs[fi];
    double psd = 0.0;

    for (const auto& res : netlist_.resistors()) {
      const auto x = ac_.solveCurrentInjection(f, res.a, res.b);
      const double z = std::abs(ac_.nodeVoltage(x, out));
      psd += z * z * 4.0 * kBoltzmann * netlist_.tempK / res.ohms;
    }
    for (std::size_t k = 0; k < netlist_.mosfets().size(); ++k) {
      const auto& fet = netlist_.mosfets()[k];
      const auto x = ac_.solveCurrentInjection(f, fet.d, fet.s);
      const double z = std::abs(ac_.nodeVoltage(x, out));
      psd += z * z * mosChannelPsd(op_.mosOps[k], fet, f);
    }
    for (const auto& d : netlist_.diodes()) {
      // Shot noise of the DC junction current.
      const double vak = op_.v[static_cast<std::size_t>(d.a)] -
                         op_.v[static_cast<std::size_t>(d.k)];
      const double vt = thermalVoltage(netlist_.tempK) * d.emission;
      const double id = d.isat * (std::exp(std::min(vak / vt, 40.0)) - 1.0);
      const auto x = ac_.solveCurrentInjection(f, d.a, d.k);
      const double z = std::abs(ac_.nodeVoltage(x, out));
      psd += z * z * 2.0 * kElectronCharge * std::abs(id);
    }
    r.outputPsd[fi] = psd;
  }

  // Trapezoidal integral over the (typically log-spaced) grid.
  double integral = 0.0;
  for (std::size_t i = 0; i + 1 < freqs.size(); ++i)
    integral += 0.5 * (r.outputPsd[i] + r.outputPsd[i + 1]) *
                (freqs[i + 1] - freqs[i]);
  r.integratedRms = std::sqrt(integral);
  return r;
}

NoiseResult NoiseAnalyzer::inputReferredNoise(const std::vector<double>& freqs,
                                              NodeId out) const {
  NoiseResult r = outputNoise(freqs, out);
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const auto x = ac_.solveAt(freqs[fi]);
    const double h = std::abs(ac_.nodeVoltage(x, out));
    r.outputPsd[fi] = h > 1e-30 ? r.outputPsd[fi] / (h * h) : 0.0;
  }
  double integral = 0.0;
  for (std::size_t i = 0; i + 1 < freqs.size(); ++i)
    integral += 0.5 * (r.outputPsd[i] + r.outputPsd[i + 1]) *
                (freqs[i + 1] - freqs[i]);
  r.integratedRms = std::sqrt(integral);
  return r;
}

}  // namespace trdse::sim
