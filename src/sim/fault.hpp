// Deterministic fault modeling for the evaluation pipeline.
//
// Real SPICE backends are not the pure functions the rest of this repo gets
// to assume: production sizing runs lose wall-clock to simulator pathologies
// (DNN-Opt, AutoCkt), not to the optimizer. The three failure classes that
// actually occur are
//   * timeout          — the job ran past its per-request deadline,
//   * non-convergence  — Newton iteration failed *transiently* (as opposed to
//                        the deterministic "this point does not bias" result
//                        a pure backend reports via EvalResult::ok == false),
//   * non-finite       — the run "completed" but emitted NaN/Inf measurements.
//
// A FaultPlan is a *seeded, deterministic* schedule of such faults: whether
// attempt `a` of evaluating (scope, grid indices, corner) faults — and with
// which class — is a pure hash of (plan seed, scope, indices, corner,
// attempt), the same tuple the EvalCache keys on plus the attempt counter.
// Every fault scenario is therefore bitwise reproducible: independent of
// thread count, of scheduling order, and of how many times the run is
// restarted. Retries draw fresh attempt indices, so injected faults are
// transient with probability 1 - rate per retry; a key whose first
// `maxAttempts` draws all fault is a *deterministically permanent* failure —
// exactly the reproducible worst case quarantine logic needs to be tested
// against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace trdse::sim {

/// The failure taxonomy of one evaluation attempt (docs/ROBUSTNESS.md).
/// `kNone` covers both success and the *deterministic* infeasible result
/// (EvalResult::ok == false with no fault) that pure backends already report.
enum class FaultClass : std::uint8_t {
  kNone = 0,            ///< clean result (possibly infeasible, but trustworthy)
  kTimeout = 1,         ///< per-request deadline exceeded
  kNonConvergence = 2,  ///< transient Newton/solver failure
  kNonFinite = 3,       ///< NaN/Inf escaped into the measurement vector
};

/// Stable display name ("timeout", "non-convergence", "non-finite", "none").
std::string_view faultClassName(FaultClass c);

/// FNV-1a hash of a scope label (circuit/problem name) — the stable way a
/// fault plan and its consumers agree on a scope without sharing a registry.
std::uint64_t hashScope(std::string_view scope);

/// Per-class injection rates, each the probability that one *attempt* draws
/// that fault. Rates are evaluated in the order timeout, non-convergence,
/// non-finite over a single uniform draw, so their sum must stay <= 1.
struct FaultPlanConfig {
  std::uint64_t seed = 0;          ///< stream seed; plans differ per seed
  double timeoutRate = 0.0;        ///< P(attempt times out)
  double nonConvergenceRate = 0.0; ///< P(attempt fails to converge)
  double nonFiniteRate = 0.0;      ///< P(attempt emits non-finite values)
  /// Wall-clock stall (seconds) an injected timeout burns before reporting,
  /// so fault scenarios also *pace* like real timeouts do. Timing never feeds
  /// back into results, so the stall is excluded from determinism contracts.
  double timeoutStallSeconds = 0.0;

  /// Whether any class has a positive rate.
  bool enabled() const {
    return timeoutRate > 0.0 || nonConvergenceRate > 0.0 || nonFiniteRate > 0.0;
  }
};

/// The seeded, deterministic fault schedule (see file header).
class FaultPlan {
 public:
  FaultPlan() = default;
  /// Validates rates (each in [0,1], sum <= 1, stall >= 0 and finite);
  /// throws std::invalid_argument naming the offending field.
  explicit FaultPlan(FaultPlanConfig config);

  const FaultPlanConfig& config() const { return config_; }
  /// Whether this plan ever injects anything.
  bool enabled() const { return config_.enabled(); }

  /// The fault (or kNone) scheduled for attempt `attempt` of evaluating
  /// (scope, indices, corner). Pure: same tuple, same answer, forever.
  FaultClass decide(std::uint64_t scopeHash,
                    const std::vector<std::size_t>& indices,
                    std::size_t cornerIndex, std::size_t attempt) const;

 private:
  FaultPlanConfig config_;
};

}  // namespace trdse::sim
