#include "sim/fault.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace trdse::sim {

namespace {

/// SplitMix64 finalizer — the same mixing the repo uses for per-task seeds
/// and cache-key hashing, so adjacent tuples land far apart in draw space.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void checkRate(const char* name, double rate) {
  if (!(rate >= 0.0) || !(rate <= 1.0))
    throw std::invalid_argument("FaultPlan: " + std::string(name) +
                                " must be in [0, 1], got " +
                                std::to_string(rate));
}

}  // namespace

std::string_view faultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kNone: return "none";
    case FaultClass::kTimeout: return "timeout";
    case FaultClass::kNonConvergence: return "non-convergence";
    case FaultClass::kNonFinite: return "non-finite";
  }
  return "unknown";
}

std::uint64_t hashScope(std::string_view scope) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const char c : scope) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(config) {
  checkRate("timeout_rate", config_.timeoutRate);
  checkRate("non_convergence_rate", config_.nonConvergenceRate);
  checkRate("non_finite_rate", config_.nonFiniteRate);
  const double sum = config_.timeoutRate + config_.nonConvergenceRate +
                     config_.nonFiniteRate;
  if (sum > 1.0)
    throw std::invalid_argument(
        "FaultPlan: class rates must sum to at most 1, got " +
        std::to_string(sum));
  if (!(config_.timeoutStallSeconds >= 0.0) ||
      !std::isfinite(config_.timeoutStallSeconds))
    throw std::invalid_argument(
        "FaultPlan: timeout_stall_seconds must be finite and >= 0");
}

FaultClass FaultPlan::decide(std::uint64_t scopeHash,
                             const std::vector<std::size_t>& indices,
                             std::size_t cornerIndex,
                             std::size_t attempt) const {
  if (!enabled()) return FaultClass::kNone;
  // Chain the whole identity tuple through the mixer; the draw is a pure
  // function of (seed, scope, indices, corner, attempt) and nothing else.
  std::uint64_t h = mix(config_.seed ^ scopeHash);
  for (const std::size_t idx : indices) h = mix(h ^ idx);
  h = mix(h ^ (cornerIndex + 0x51ull));
  h = mix(h ^ (attempt + 0xa7ull));
  // 53 uniform bits -> [0, 1): exact and identical on every platform.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < config_.timeoutRate) return FaultClass::kTimeout;
  if (u < config_.timeoutRate + config_.nonConvergenceRate)
    return FaultClass::kNonConvergence;
  if (u < config_.timeoutRate + config_.nonConvergenceRate +
              config_.nonFiniteRate)
    return FaultClass::kNonFinite;
  return FaultClass::kNone;
}

}  // namespace trdse::sim
