#include "sim/assembly_plan.hpp"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace trdse::sim {

namespace {

int flatCell(const Netlist& nl, std::size_t n, NodeId r, NodeId c) {
  if (r == kGround || c == kGround) return -1;
  return static_cast<int>(nl.nodeIndex(r) * n + nl.nodeIndex(c));
}

int rhsRow(const Netlist& nl, NodeId a) {
  return a == kGround ? -1 : static_cast<int>(nl.nodeIndex(a));
}

std::uint64_t fnv1a(const std::vector<std::int64_t>& sig) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t v : sig) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct PlanCache {
  std::mutex mu;
  // Collision-chained on the full signature: a hash hit still compares
  // topoSig before a plan is shared.
  std::unordered_map<std::uint64_t, std::vector<PlanHandle>> byHash;
};

PlanCache& cache() {
  static PlanCache c;
  return c;
}

std::atomic<std::uint64_t> gBuildCount{0};

PlanHandle buildPlan(const Netlist& nl, std::vector<std::int64_t> sig,
                     std::uint64_t hash) {
  auto plan = std::make_shared<AssemblyPlan>();
  plan->hash = hash;
  plan->n = nl.unknownCount();
  plan->nodes = nl.nodeCount();
  plan->nBranches = nl.branchCount();
  plan->topoSig = std::move(sig);
  const std::size_t n = plan->n;
  plan->mosIdx.resize(nl.mosfets().size());
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& fet = nl.mosfets()[k];
    MosStampIdx& ix = plan->mosIdx[k];
    const NodeId nodes[8][2] = {{fet.d, fet.d}, {fet.d, fet.g}, {fet.d, fet.s},
                                {fet.d, fet.b}, {fet.s, fet.d}, {fet.s, fet.g},
                                {fet.s, fet.s}, {fet.s, fet.b}};
    for (int e = 0; e < 8; ++e)
      ix.cell[e] = flatCell(nl, n, nodes[e][0], nodes[e][1]);
    ix.rhsD = rhsRow(nl, fet.d);
    ix.rhsS = rhsRow(nl, fet.s);
    ix.d = fet.d;
    ix.g = fet.g;
    ix.s = fet.s;
    ix.b = fet.b;
  }
  plan->dioIdx.resize(nl.diodes().size());
  for (std::size_t k = 0; k < nl.diodes().size(); ++k) {
    const auto& d = nl.diodes()[k];
    DiodeStampIdx& ix = plan->dioIdx[k];
    ix.cell[0] = flatCell(nl, n, d.a, d.a);
    ix.cell[1] = flatCell(nl, n, d.a, d.k);
    ix.cell[2] = flatCell(nl, n, d.k, d.k);
    ix.cell[3] = flatCell(nl, n, d.k, d.a);
    ix.rhsA = rhsRow(nl, d.a);
    ix.rhsK = rhsRow(nl, d.k);
    ix.a = d.a;
    ix.k = d.k;
  }
  gBuildCount.fetch_add(1, std::memory_order_relaxed);
  return plan;
}

}  // namespace

std::vector<std::int64_t> topologySignature(const Netlist& nl) {
  std::vector<std::int64_t> sig;
  sig.reserve(16 + 4 * nl.mosfets().size() + 2 * nl.resistors().size());
  sig.push_back(static_cast<std::int64_t>(nl.nodeCount()));
  sig.push_back(static_cast<std::int64_t>(nl.resistors().size()));
  sig.push_back(static_cast<std::int64_t>(nl.capacitors().size()));
  sig.push_back(static_cast<std::int64_t>(nl.vsources().size()));
  sig.push_back(static_cast<std::int64_t>(nl.isources().size()));
  sig.push_back(static_cast<std::int64_t>(nl.vcvs().size()));
  sig.push_back(static_cast<std::int64_t>(nl.vccs().size()));
  sig.push_back(static_cast<std::int64_t>(nl.diodes().size()));
  sig.push_back(static_cast<std::int64_t>(nl.inductors().size()));
  sig.push_back(static_cast<std::int64_t>(nl.mosfets().size()));
  for (const auto& r : nl.resistors()) {
    sig.push_back(r.a);
    sig.push_back(r.b);
  }
  for (const auto& c : nl.capacitors()) {
    sig.push_back(c.a);
    sig.push_back(c.b);
  }
  for (const auto& v : nl.vsources()) {
    sig.push_back(v.p);
    sig.push_back(v.n);
  }
  for (const auto& i : nl.isources()) {
    sig.push_back(i.p);
    sig.push_back(i.n);
  }
  for (const auto& e : nl.vcvs()) {
    sig.push_back(e.p);
    sig.push_back(e.n);
    sig.push_back(e.cp);
    sig.push_back(e.cn);
  }
  for (const auto& g : nl.vccs()) {
    sig.push_back(g.p);
    sig.push_back(g.n);
    sig.push_back(g.cp);
    sig.push_back(g.cn);
  }
  for (const auto& d : nl.diodes()) {
    sig.push_back(d.a);
    sig.push_back(d.k);
  }
  for (const auto& ind : nl.inductors()) {
    sig.push_back(ind.a);
    sig.push_back(ind.b);
  }
  for (const auto& m : nl.mosfets()) {
    sig.push_back(m.d);
    sig.push_back(m.g);
    sig.push_back(m.s);
    sig.push_back(m.b);
  }
  return sig;
}

PlanHandle acquirePlan(const Netlist& nl) {
  std::vector<std::int64_t> sig = topologySignature(nl);
  const std::uint64_t hash = fnv1a(sig);
  PlanCache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  auto& chain = c.byHash[hash];
  for (const PlanHandle& p : chain)
    if (p->topoSig == sig) return p;
  PlanHandle built = buildPlan(nl, std::move(sig), hash);
  chain.push_back(built);
  return built;
}

std::uint64_t planBuildCount() {
  return gBuildCount.load(std::memory_order_relaxed);
}

void clearPlanCache() {
  PlanCache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.byHash.clear();
}

}  // namespace trdse::sim
