// Exponential junction diode with a C1-continuous linear extension above
// ~1 V of forward bias so Newton cannot overflow the exponential.
//
// Like the MOSFET card, the scalar and batched kernels are compiled in one
// translation unit (diode.cpp, FP contraction off) and share one branchless
// formulation, so a lane of evalDiodeBlock is bitwise identical to the
// corresponding scalar evalDiode call.
#pragma once

#include "sim/mosfet.hpp"  // kSimLanes
#include "sim/netlist.hpp"
#include "sim/process.hpp"

namespace trdse::sim {

struct DiodeOp {
  double id = 0.0;  ///< anode->cathode current
  double gd = 0.0;  ///< small-signal conductance dI/dV
};

DiodeOp evalDiode(const Diode& d, double vak, double tempK);

/// Per-lane voltage-independent context (lanes differ in corner temperature
/// and PVT-adjusted saturation current).
struct DiodeCtxBlock {
  double isat[kSimLanes];
  double vt[kSimLanes];  ///< thermalVoltage(tempK) * emission
};

struct DiodeOpBlock {
  double id[kSimLanes];
  double gd[kSimLanes];
};

/// Lane l bitwise-matches evalDiode with that lane's parameters.
void evalDiodeBlock(const DiodeCtxBlock& ctx, const double* vak,
                    DiodeOpBlock& out);

}  // namespace trdse::sim
