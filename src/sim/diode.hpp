// Exponential junction diode with a C1-continuous linear extension above
// ~1 V of forward bias so Newton cannot overflow the exponential.
#pragma once

#include <cmath>

#include "sim/netlist.hpp"
#include "sim/process.hpp"

namespace trdse::sim {

struct DiodeOp {
  double id = 0.0;  ///< anode->cathode current
  double gd = 0.0;  ///< small-signal conductance dI/dV
};

inline DiodeOp evalDiode(const Diode& d, double vak, double tempK) {
  const double vt = thermalVoltage(tempK) * d.emission;
  const double x = vak / vt;
  constexpr double kMaxExp = 40.0;
  DiodeOp op;
  if (x > kMaxExp) {
    // Linear extension: value and slope continuous at the knee.
    const double eKnee = std::exp(kMaxExp);
    op.id = d.isat * (eKnee * (1.0 + (x - kMaxExp)) - 1.0);
    op.gd = d.isat * eKnee / vt;
  } else {
    const double e = std::exp(x);
    op.id = d.isat * (e - 1.0);
    op.gd = d.isat * e / vt;
  }
  op.gd += 1e-12;  // gmin keeps reverse-biased diodes from isolating nodes
  return op;
}

}  // namespace trdse::sim
