#include "sim/process.hpp"

#include <cassert>
#include <cmath>

namespace trdse::sim {

std::string_view toString(ProcessCorner c) {
  switch (c) {
    case ProcessCorner::kTT:
      return "TT";
    case ProcessCorner::kFF:
      return "FF";
    case ProcessCorner::kSS:
      return "SS";
    case ProcessCorner::kFS:
      return "FS";
    case ProcessCorner::kSF:
      return "SF";
  }
  return "?";
}

std::string PvtCorner::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s/%.2fV/%gC", std::string(toString(corner)).c_str(),
                vdd, tempC);
  return buf;
}

double thermalVoltage(double tempK) { return 1.380649e-23 * tempK / 1.602176634e-19; }

MosParams applyPvt(const MosParams& nominal, MosType type, const PvtCorner& pvt,
                   double tnomK) {
  MosParams p = nominal;

  // Process corner: "fast" = lower threshold + higher mobility.
  // FS = fast NMOS / slow PMOS; SF = the reverse.
  constexpr double kVthShift = 0.03;  // [V] 3-sigma-ish corner shift
  constexpr double kKpShift = 0.10;   // +-10% mobility
  int speed = 0;                      // +1 fast, -1 slow
  switch (pvt.corner) {
    case ProcessCorner::kTT:
      speed = 0;
      break;
    case ProcessCorner::kFF:
      speed = 1;
      break;
    case ProcessCorner::kSS:
      speed = -1;
      break;
    case ProcessCorner::kFS:
      speed = (type == MosType::kNmos) ? 1 : -1;
      break;
    case ProcessCorner::kSF:
      speed = (type == MosType::kNmos) ? -1 : 1;
      break;
  }
  p.vth0 -= static_cast<double>(speed) * kVthShift;
  p.kp *= 1.0 + static_cast<double>(speed) * kKpShift;

  // Temperature: mobility degrades ~T^-1.5, threshold magnitude drops.
  const double tK = pvt.tempK();
  p.kp *= std::pow(tK / tnomK, -1.5);
  p.vth0 -= 1.0e-3 * (tK - tnomK);
  return p;
}

namespace {

ProcessCard makeBsim45() {
  ProcessCard c;
  c.name = "bsim45";
  c.minL = 45e-9;
  c.nominalVdd = 1.1;
  c.nmos = {.kp = 4.0e-4,
            .vth0 = 0.46,
            .lambdaCoeff = 9e-9,
            .gamma = 0.35,
            .phi = 0.85,
            .slopeN = 1.30,
            .cox = 0.014,
            .cjArea = 1.2e-3};
  c.pmos = {.kp = 1.8e-4,
            .vth0 = 0.49,
            .lambdaCoeff = 11e-9,
            .gamma = 0.32,
            .phi = 0.85,
            .slopeN = 1.35,
            .cox = 0.014,
            .cjArea = 1.2e-3};
  return c;
}

ProcessCard makeBsim22() {
  // Deliberately *not* a scaled copy of 45nm: porting (Table II) found that
  // network weights do not transfer because device distributions differ.
  ProcessCard c;
  c.name = "bsim22";
  c.minL = 22e-9;
  c.nominalVdd = 0.9;
  c.nmos = {.kp = 5.5e-4,
            .vth0 = 0.38,
            .lambdaCoeff = 6.5e-9,
            .gamma = 0.28,
            .phi = 0.80,
            .slopeN = 1.38,
            .cox = 0.021,
            .cjArea = 1.4e-3};
  c.pmos = {.kp = 2.6e-4,
            .vth0 = 0.41,
            .lambdaCoeff = 8e-9,
            .gamma = 0.26,
            .phi = 0.80,
            .slopeN = 1.42,
            .cox = 0.021,
            .cjArea = 1.4e-3};
  return c;
}

ProcessCard makeN6() {
  ProcessCard c;
  c.name = "n6";
  c.minL = 32e-9;  // drawn gate length proxy for a 6nm-class finfet node
  c.nominalVdd = 0.75;
  c.nmos = {.kp = 7.5e-4,
            .vth0 = 0.32,
            .lambdaCoeff = 4.5e-9,
            .gamma = 0.20,
            .phi = 0.75,
            .slopeN = 1.25,
            .cox = 0.028,
            .cjArea = 1.6e-3};
  c.pmos = {.kp = 4.2e-4,
            .vth0 = 0.34,
            .lambdaCoeff = 5.5e-9,
            .gamma = 0.19,
            .phi = 0.75,
            .slopeN = 1.28,
            .cox = 0.028,
            .cjArea = 1.6e-3};
  return c;
}

ProcessCard makeN5() {
  ProcessCard c;
  c.name = "n5";
  c.minL = 28e-9;
  c.nominalVdd = 0.70;
  c.nmos = {.kp = 8.5e-4,
            .vth0 = 0.30,
            .lambdaCoeff = 4.0e-9,
            .gamma = 0.18,
            .phi = 0.72,
            .slopeN = 1.22,
            .cox = 0.031,
            .cjArea = 1.7e-3};
  c.pmos = {.kp = 5.0e-4,
            .vth0 = 0.32,
            .lambdaCoeff = 5.0e-9,
            .gamma = 0.17,
            .phi = 0.72,
            .slopeN = 1.25,
            .cox = 0.031,
            .cjArea = 1.7e-3};
  return c;
}

}  // namespace

const ProcessCard& bsim45Card() {
  static const ProcessCard c = makeBsim45();
  return c;
}
const ProcessCard& bsim22Card() {
  static const ProcessCard c = makeBsim22();
  return c;
}
const ProcessCard& n6Card() {
  static const ProcessCard c = makeN6();
  return c;
}
const ProcessCard& n5Card() {
  static const ProcessCard c = makeN5();
  return c;
}

const ProcessCard* findCard(std::string_view name) {
  if (name == "bsim45") return &bsim45Card();
  if (name == "bsim22") return &bsim22Card();
  if (name == "n6") return &n6Card();
  if (name == "n5") return &n5Card();
  return nullptr;
}

const ProcessCard& cardByName(std::string_view name) {
  const ProcessCard* card = findCard(name);
  assert(card != nullptr && "unknown process card");
  return card != nullptr ? *card : bsim45Card();
}

}  // namespace trdse::sim
