#include "sim/diode.hpp"

#include "core/fastmath.hpp"

namespace trdse::sim {

namespace {

namespace fmx = trdse::fastmath;

constexpr double kMaxExp = 40.0;

// Shared branchless body. For x <= kMaxExp the extension term (x - xe) is
// exactly zero and e*(1 + 0) == e, so one expression covers both regimes with
// the knee's value and slope continuous.
inline DiodeOp evalDiodeOne(double isat, double vt, double vak) {
  const double x = vak / vt;
  const double xe = x > kMaxExp ? kMaxExp : x;
  const double e = fmx::fastExp(xe);
  DiodeOp op;
  op.id = isat * (e * (1.0 + (x - xe)) - 1.0);
  op.gd = isat * e / vt;
  op.gd += 1e-12;  // gmin keeps reverse-biased diodes from isolating nodes
  return op;
}

}  // namespace

DiodeOp evalDiode(const Diode& d, double vak, double tempK) {
  const double vt = thermalVoltage(tempK) * d.emission;
  return evalDiodeOne(d.isat, vt, vak);
}

void evalDiodeBlock(const DiodeCtxBlock& ctx, const double* vak,
                    DiodeOpBlock& out) {
  for (int l = 0; l < kSimLanes; ++l) {
    const DiodeOp op = evalDiodeOne(ctx.isat[l], ctx.vt[l], vak[l]);
    out.id[l] = op.id;
    out.gd[l] = op.gd;
  }
}

}  // namespace trdse::sim
