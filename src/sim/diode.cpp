#include "sim/diode.hpp"

#include "core/fastmath.hpp"

namespace trdse::sim {

namespace {

namespace fmx = trdse::fastmath;

constexpr double kMaxExp = 40.0;

// Shared branchless body. For x <= kMaxExp the extension term (x - xe) is
// exactly zero and e*(1 + 0) == e, so one expression covers both regimes with
// the knee's value and slope continuous.
inline DiodeOp evalDiodeOne(double isat, double vt, double vak) {
  const double x = vak / vt;
  const double xe = x > kMaxExp ? kMaxExp : x;
  const double e = fmx::fastExp(xe);
  DiodeOp op;
  op.id = isat * (e * (1.0 + (x - xe)) - 1.0);
  op.gd = isat * e / vt;
  op.gd += 1e-12;  // gmin keeps reverse-biased diodes from isolating nodes
  return op;
}

}  // namespace

DiodeOp evalDiode(const Diode& d, double vak, double tempK) {
  const double vt = thermalVoltage(tempK) * d.emission;
  return evalDiodeOne(d.isat, vt, vak);
}

void evalDiodeBlock(const DiodeCtxBlock& ctx, const double* vak,
                    DiodeOpBlock& out) {
  static_assert(kSimLanes == 4, "explicit vector kernel assumes 4 lanes");
  using simd::V4d;
  // Same expressions as evalDiodeOne, four lanes wide (fastExp4 is the
  // bit-identical vector twin of fastExp).
  const V4d vt = simd::load4(ctx.vt);
  const V4d isat = simd::load4(ctx.isat);
  const V4d x = simd::load4(vak) / vt;
  const V4d cap = simd::splat4(kMaxExp);
  const V4d xe = simd::select4(x > kMaxExp, cap, x);
  const V4d e = fmx::fastExp4(xe);
  simd::store4(out.id, isat * (e * (1.0 + (x - xe)) - 1.0));
  const V4d gd = isat * e / vt;
  simd::store4(out.gd, gd + 1e-12);
}

}  // namespace trdse::sim
