#include "sim/dc.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "sim/diode.hpp"

namespace trdse::sim {

namespace {

/// Stamp helper: add g between nodes a and b of the reduced MNA matrix.
void stampG(linalg::Matrix& A, const Netlist& nl, NodeId a, NodeId b, double g) {
  if (a != kGround) {
    const std::size_t ia = nl.nodeIndex(a);
    A(ia, ia) += g;
    if (b != kGround) A(ia, nl.nodeIndex(b)) -= g;
  }
  if (b != kGround) {
    const std::size_t ib = nl.nodeIndex(b);
    A(ib, ib) += g;
    if (a != kGround) A(ib, nl.nodeIndex(a)) -= g;
  }
}

/// Stamp a current i flowing out of node a and into node b (KCL RHS).
void stampI(linalg::Vector& rhs, const Netlist& nl, NodeId a, NodeId b, double i) {
  if (a != kGround) rhs[nl.nodeIndex(a)] -= i;
  if (b != kGround) rhs[nl.nodeIndex(b)] += i;
}

/// Add coefficient c at (row of node r, column of node cNode), skipping ground.
void addAt(linalg::Matrix& A, const Netlist& nl, NodeId r, NodeId cNode, double c) {
  if (r == kGround || cNode == kGround) return;
  A(nl.nodeIndex(r), nl.nodeIndex(cNode)) += c;
}

}  // namespace

DcSolver::DcSolver(const Netlist& netlist, DcOptions options)
    : netlist_(netlist), options_(options) {}

DcResult DcSolver::newtonLoop(linalg::Vector v, double gmin, double srcScale,
                              int maxIter) const {
  const Netlist& nl = netlist_;
  const std::size_t n = nl.unknownCount();
  DcResult result;
  result.v = std::move(v);
  if (result.v.size() != nl.nodeCount()) result.v.assign(nl.nodeCount(), 0.0);

  linalg::Matrix A(n, n);
  linalg::Vector rhs(n, 0.0);
  linalg::LuSolver<double> lu;
  std::vector<MosOp> ops(nl.mosfets().size());

  for (int iter = 0; iter < maxIter; ++iter) {
    A.fill(0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);

    for (const auto& r : nl.resistors()) stampG(A, nl, r.a, r.b, 1.0 / r.ohms);
    // Capacitors are open in DC; gmin keeps floating nodes anchored.
    for (std::size_t i = 1; i < nl.nodeCount(); ++i)
      A(nl.nodeIndex(static_cast<NodeId>(i)), nl.nodeIndex(static_cast<NodeId>(i))) += gmin;

    for (const auto& src : nl.isources())
      stampI(rhs, nl, src.p, src.n, src.idc * srcScale);

    // VCCS: i(p->n) = gm * (v_cp - v_cn), purely linear.
    for (const auto& g : nl.vccs()) {
      addAt(A, nl, g.p, g.cp, g.gm);
      addAt(A, nl, g.p, g.cn, -g.gm);
      addAt(A, nl, g.n, g.cp, -g.gm);
      addAt(A, nl, g.n, g.cn, g.gm);
    }

    // Diodes: Newton linearization around the current guess.
    for (const auto& d : nl.diodes()) {
      const double vak = result.v[static_cast<std::size_t>(d.a)] -
                         result.v[static_cast<std::size_t>(d.k)];
      const DiodeOp op = evalDiode(d, vak, nl.tempK);
      stampG(A, nl, d.a, d.k, op.gd);
      stampI(rhs, nl, d.a, d.k, op.id - op.gd * vak);
    }

    // Inductors are DC shorts: a zero-volt branch.
    for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
      const auto& ind = nl.inductors()[k];
      const std::size_t br = nl.inductorBranchIndex(k);
      if (ind.a != kGround) {
        A(nl.nodeIndex(ind.a), br) += 1.0;
        A(br, nl.nodeIndex(ind.a)) += 1.0;
      }
      if (ind.b != kGround) {
        A(nl.nodeIndex(ind.b), br) -= 1.0;
        A(br, nl.nodeIndex(ind.b)) -= 1.0;
      }
    }

    // MOSFETs: Newton linearization. ids leaves the drain node and enters the
    // source node; the linearized current is
    //   ids(v) ~= ids0 + sum_t g_t (v_t - v_t0).
    for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
      const auto& fet = nl.mosfets()[k];
      const double vd = result.v[static_cast<std::size_t>(fet.d)];
      const double vg = result.v[static_cast<std::size_t>(fet.g)];
      const double vs = result.v[static_cast<std::size_t>(fet.s)];
      const double vb = result.v[static_cast<std::size_t>(fet.b)];
      const MosOp op = evalMos(fet.params, fet.type, fet.geom, vd, vg, vs, vb,
                               nl.tempK);
      ops[k] = op;
      // Jacobian entries for the drain KCL row (+ids) and source row (-ids).
      addAt(A, nl, fet.d, fet.d, op.dIdVd);
      addAt(A, nl, fet.d, fet.g, op.dIdVg);
      addAt(A, nl, fet.d, fet.s, op.dIdVs);
      addAt(A, nl, fet.d, fet.b, op.dIdVb);
      addAt(A, nl, fet.s, fet.d, -op.dIdVd);
      addAt(A, nl, fet.s, fet.g, -op.dIdVg);
      addAt(A, nl, fet.s, fet.s, -op.dIdVs);
      addAt(A, nl, fet.s, fet.b, -op.dIdVb);
      const double ieq = op.ids - op.dIdVd * vd - op.dIdVg * vg -
                         op.dIdVs * vs - op.dIdVb * vb;
      stampI(rhs, nl, fet.d, fet.s, ieq);
    }

    for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
      const auto& src = nl.vsources()[k];
      const std::size_t br = nl.vsourceBranchIndex(k);
      if (src.p != kGround) {
        A(nl.nodeIndex(src.p), br) += 1.0;
        A(br, nl.nodeIndex(src.p)) += 1.0;
      }
      if (src.n != kGround) {
        A(nl.nodeIndex(src.n), br) -= 1.0;
        A(br, nl.nodeIndex(src.n)) -= 1.0;
      }
      rhs[br] = src.vdc * srcScale;
    }

    for (std::size_t k = 0; k < nl.vcvs().size(); ++k) {
      const auto& e = nl.vcvs()[k];
      const std::size_t br = nl.vcvsBranchIndex(k);
      if (e.p != kGround) {
        A(nl.nodeIndex(e.p), br) += 1.0;
        A(br, nl.nodeIndex(e.p)) += 1.0;
      }
      if (e.n != kGround) {
        A(nl.nodeIndex(e.n), br) -= 1.0;
        A(br, nl.nodeIndex(e.n)) -= 1.0;
      }
      if (e.cp != kGround) A(br, nl.nodeIndex(e.cp)) -= e.gain;
      if (e.cn != kGround) A(br, nl.nodeIndex(e.cn)) += e.gain;
    }

    if (!lu.factor(A)) {
      result.converged = false;
      result.iterations = iter;
      return result;
    }
    const linalg::Vector x = lu.solve(rhs);

    // Damped update + convergence test on the raw step.
    double maxStep = 0.0;
    for (std::size_t i = 1; i < nl.nodeCount(); ++i) {
      const double vNew = x[nl.nodeIndex(static_cast<NodeId>(i))];
      const double dv = vNew - result.v[i];
      maxStep = std::max(maxStep, std::abs(dv));
      result.v[i] += std::clamp(dv, -options_.damping, options_.damping);
    }
    result.iterations = iter + 1;

    const double vScale = linalg::normInf(result.v);
    if (maxStep < options_.tolAbs + options_.tolRel * vScale) {
      result.converged = true;
      result.branchCurrents.assign(nl.branchCount(), 0.0);
      for (std::size_t k = 0; k < nl.branchCount(); ++k)
        result.branchCurrents[k] = x[nl.nodeCount() - 1 + k];
      result.diodeConductances.resize(nl.diodes().size());
      for (std::size_t k = 0; k < nl.diodes().size(); ++k) {
        const auto& d = nl.diodes()[k];
        const double vak = result.v[static_cast<std::size_t>(d.a)] -
                           result.v[static_cast<std::size_t>(d.k)];
        result.diodeConductances[k] = evalDiode(d, vak, nl.tempK).gd;
      }
      // Re-evaluate device operating points at the converged voltages.
      for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
        const auto& fet = nl.mosfets()[k];
        ops[k] = evalMos(fet.params, fet.type, fet.geom,
                         result.v[static_cast<std::size_t>(fet.d)],
                         result.v[static_cast<std::size_t>(fet.g)],
                         result.v[static_cast<std::size_t>(fet.s)],
                         result.v[static_cast<std::size_t>(fet.b)], nl.tempK);
      }
      result.mosOps = std::move(ops);
      return result;
    }
  }
  result.converged = false;
  return result;
}

DcResult DcSolver::solve(const linalg::Vector* initialGuess) const {
  linalg::Vector v0;
  if (initialGuess != nullptr && initialGuess->size() == netlist_.nodeCount()) {
    v0 = *initialGuess;
  } else {
    v0.assign(netlist_.nodeCount(), 0.0);
  }

  // 1) plain Newton
  DcResult r = newtonLoop(v0, options_.gmin, 1.0, options_.maxIterations);
  if (r.converged) return r;

  // 2) gmin stepping: start heavily damped towards ground, relax tenfold.
  linalg::Vector warm = v0;
  for (double gmin : {1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11}) {
    DcResult step = newtonLoop(warm, gmin, 1.0, options_.maxIterations);
    if (step.converged) warm = step.v;
  }
  r = newtonLoop(warm, options_.gmin, 1.0, options_.maxIterations);
  if (r.converged) return r;

  // 3) source stepping: ramp all independent sources from 10% to 100%.
  warm = v0;
  for (double scale : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    DcResult step = newtonLoop(warm, 1e-9, scale, options_.maxIterations);
    if (step.converged) warm = step.v;
  }
  return newtonLoop(warm, options_.gmin, 1.0, options_.maxIterations);
}

}  // namespace trdse::sim
