#include "sim/sim_profile.hpp"

#include <atomic>
#include <chrono>

namespace trdse::sim {

namespace {

std::atomic<bool> gEnabled{false};
std::atomic<std::uint64_t> gPhaseNs[4] = {};

}  // namespace

bool simProfilingEnabled() {
  return gEnabled.load(std::memory_order_relaxed);
}

void setSimProfiling(bool on) {
  gEnabled.store(on, std::memory_order_relaxed);
}

SimPhaseTotals simPhaseTotals() {
  SimPhaseTotals t;
  t.deviceEvalNs = gPhaseNs[0].load(std::memory_order_relaxed);
  t.stampNs = gPhaseNs[1].load(std::memory_order_relaxed);
  t.factorNs = gPhaseNs[2].load(std::memory_order_relaxed);
  t.solveNs = gPhaseNs[3].load(std::memory_order_relaxed);
  return t;
}

void resetSimPhaseTotals() {
  for (auto& c : gPhaseNs) c.store(0, std::memory_order_relaxed);
}

void addSimPhaseNs(SimPhase phase, std::uint64_t ns) {
  gPhaseNs[static_cast<int>(phase)].fetch_add(ns, std::memory_order_relaxed);
}

std::int64_t simProfileNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace trdse::sim
