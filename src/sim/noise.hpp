// Small-signal noise analysis.
//
// Every physical noise generator is modelled as a current source across its
// device and propagated to the output node by superposition through the
// linearized network:
//   resistor:  thermal   4kT/R                 [A^2/Hz]
//   MOSFET:    channel   4kT * gamma * gm  (+ 1/f: Kf/(Cox W L f))
//   diode:     shot      2 q Id
// The output PSD is  sum_k |Z_out,k(f)|^2 * S_k(f), with Z from a unit
// current injection solve per source. Input-referred noise divides by the
// signal gain |H(f)|^2.
#pragma once

#include <vector>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/netlist.hpp"

namespace trdse::sim {

struct NoiseOptions {
  double mosGamma = 1.0;     ///< excess channel-noise factor (short channel)
  double flickerKf = 2e-25;  ///< 1/f coefficient [J]
  bool includeFlicker = true;
};

struct NoiseResult {
  std::vector<double> freqs;
  std::vector<double> outputPsd;  ///< [V^2/Hz] at the output node
  /// sqrt of the PSD integral over the swept band [V rms].
  double integratedRms = 0.0;
};

class NoiseAnalyzer {
 public:
  NoiseAnalyzer(const Netlist& netlist, const DcResult& op,
                NoiseOptions options = {});

  /// Output noise PSD at `out` over the frequency grid.
  NoiseResult outputNoise(const std::vector<double>& freqs, NodeId out) const;

  /// Input-referred PSD: output PSD divided by |H|^2 where H is the transfer
  /// from the netlist's AC sources to `out`.
  NoiseResult inputReferredNoise(const std::vector<double>& freqs,
                                 NodeId out) const;

 private:
  double mosChannelPsd(const MosOp& op, const MosInstance& fet, double freq) const;

  const Netlist& netlist_;
  const DcResult& op_;
  NoiseOptions options_;
  AcSolver ac_;
};

}  // namespace trdse::sim
