#include "sim/transient.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/lu.hpp"
#include "sim/diode.hpp"

namespace trdse::sim {

namespace {

struct CapState {
  NodeId a = kGround;
  NodeId b = kGround;
  double c = 0.0;
  double vPrev = 0.0;  ///< v(a) - v(b) at the previous accepted step
  double iPrev = 0.0;  ///< companion current at the previous step
};

void stampG(linalg::Matrix& A, const Netlist& nl, NodeId a, NodeId b, double g) {
  if (a != kGround) {
    const std::size_t ia = nl.nodeIndex(a);
    A(ia, ia) += g;
    if (b != kGround) A(ia, nl.nodeIndex(b)) -= g;
  }
  if (b != kGround) {
    const std::size_t ib = nl.nodeIndex(b);
    A(ib, ib) += g;
    if (a != kGround) A(ib, nl.nodeIndex(a)) -= g;
  }
}

void stampI(linalg::Vector& rhs, const Netlist& nl, NodeId a, NodeId b, double i) {
  if (a != kGround) rhs[nl.nodeIndex(a)] -= i;
  if (b != kGround) rhs[nl.nodeIndex(b)] += i;
}

void addAt(linalg::Matrix& A, const Netlist& nl, NodeId r, NodeId c, double v) {
  if (r == kGround || c == kGround) return;
  A(nl.nodeIndex(r), nl.nodeIndex(c)) += v;
}

}  // namespace

TransientSolver::TransientSolver(const Netlist& netlist, TransientOptions options)
    : netlist_(netlist), options_(options) {}

TransientResult TransientSolver::run(const linalg::Vector& initialVoltages) const {
  const Netlist& nl = netlist_;
  const std::size_t n = nl.unknownCount();
  TransientResult result;
  assert(initialVoltages.size() == nl.nodeCount());

  // Collect all capacitors (explicit + device parasitics) as companion states.
  std::vector<CapState> caps;
  for (const auto& c : nl.capacitors()) caps.push_back({c.a, c.b, c.farads, 0, 0});
  if (options_.includeDeviceCaps) {
    for (const auto& fet : nl.mosfets()) {
      const double cgg = gateCapacitance(fet.params, fet.geom);
      caps.push_back({fet.g, fet.s, 0.7 * cgg, 0, 0});
      caps.push_back({fet.g, fet.d, 0.3 * cgg, 0, 0});
      caps.push_back({fet.d, fet.b, drainCapacitance(fet.params, fet.geom), 0, 0});
    }
  }

  linalg::Vector v = initialVoltages;  // node voltages incl. ground
  for (auto& cs : caps) {
    cs.vPrev = v[static_cast<std::size_t>(cs.a)] - v[static_cast<std::size_t>(cs.b)];
    cs.iPrev = 0.0;
  }

  // Inductor companion state: branch current + branch voltage history.
  struct IndState {
    double iPrev = 0.0;
    double vPrev = 0.0;
  };
  std::vector<IndState> inds(nl.inductors().size());
  for (std::size_t k = 0; k < inds.size(); ++k) {
    const auto& ind = nl.inductors()[k];
    inds[k].vPrev = v[static_cast<std::size_t>(ind.a)] -
                    v[static_cast<std::size_t>(ind.b)];
  }

  const double h = options_.dt;
  const std::size_t steps = static_cast<std::size_t>(options_.tStop / h);
  const std::size_t nBranches = nl.branchCount();
  result.times.reserve(steps + 1);
  result.voltages.reserve(steps + 1);
  result.branchCurrents.reserve(steps + 1);
  result.times.push_back(0.0);
  result.voltages.push_back(v);
  result.branchCurrents.emplace_back(nBranches, 0.0);

  linalg::Matrix A(n, n);
  linalg::Vector rhs(n, 0.0);
  linalg::LuSolver<double> lu;

  for (std::size_t step = 1; step <= steps; ++step) {
    // Newton iterations for this time point; warm-start from the last point.
    linalg::Vector vIter = v;
    bool converged = false;
    linalg::Vector x;
    for (int it = 0; it < options_.maxNewtonIterations; ++it) {
      A.fill(0.0);
      std::fill(rhs.begin(), rhs.end(), 0.0);

      for (const auto& r : nl.resistors()) stampG(A, nl, r.a, r.b, 1.0 / r.ohms);
      for (std::size_t i = 1; i < nl.nodeCount(); ++i)
        A(i - 1, i - 1) += 1e-12;  // gmin

      for (const auto& src : nl.isources()) stampI(rhs, nl, src.p, src.n, src.idc);

      for (const auto& g : nl.vccs()) {
        addAt(A, nl, g.p, g.cp, g.gm);
        addAt(A, nl, g.p, g.cn, -g.gm);
        addAt(A, nl, g.n, g.cp, -g.gm);
        addAt(A, nl, g.n, g.cn, g.gm);
      }

      // Inductor trapezoidal companion:
      //   i_new = i_old + h/(2L) (v_new + v_old)
      //   branch row: v_p - v_n - (2L/h) i_new = -(v_old + (2L/h) i_old)
      for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
        const auto& ind = nl.inductors()[k];
        const std::size_t br = nl.inductorBranchIndex(k);
        if (ind.a != kGround) {
          A(nl.nodeIndex(ind.a), br) += 1.0;
          A(br, nl.nodeIndex(ind.a)) += 1.0;
        }
        if (ind.b != kGround) {
          A(nl.nodeIndex(ind.b), br) -= 1.0;
          A(br, nl.nodeIndex(ind.b)) -= 1.0;
        }
        const double zeq = 2.0 * ind.henry / h;
        A(br, br) -= zeq;
        rhs[br] = -(inds[k].vPrev + zeq * inds[k].iPrev);
      }

      // Trapezoidal companion: i = geq*(v - vPrev) - iPrev, geq = 2C/h.
      for (const auto& cs : caps) {
        const double geq = 2.0 * cs.c / h;
        stampG(A, nl, cs.a, cs.b, geq);
        const double ieq = -geq * cs.vPrev - cs.iPrev;
        stampI(rhs, nl, cs.a, cs.b, ieq);
      }

      // Diodes come after the linear companion stamps so the batched solver
      // (which adds per-iteration nonlinear stamps onto a precomputed linear
      // base matrix) accumulates every cell in the same order.
      for (const auto& d : nl.diodes()) {
        const double vak = vIter[static_cast<std::size_t>(d.a)] -
                           vIter[static_cast<std::size_t>(d.k)];
        const DiodeOp dop = evalDiode(d, vak, nl.tempK);
        stampG(A, nl, d.a, d.k, dop.gd);
        stampI(rhs, nl, d.a, d.k, dop.id - dop.gd * vak);
      }

      for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
        const auto& fet = nl.mosfets()[k];
        const MosOp op = evalMos(fet.params, fet.type, fet.geom,
                                 vIter[static_cast<std::size_t>(fet.d)],
                                 vIter[static_cast<std::size_t>(fet.g)],
                                 vIter[static_cast<std::size_t>(fet.s)],
                                 vIter[static_cast<std::size_t>(fet.b)], nl.tempK);
        addAt(A, nl, fet.d, fet.d, op.dIdVd);
        addAt(A, nl, fet.d, fet.g, op.dIdVg);
        addAt(A, nl, fet.d, fet.s, op.dIdVs);
        addAt(A, nl, fet.d, fet.b, op.dIdVb);
        addAt(A, nl, fet.s, fet.d, -op.dIdVd);
        addAt(A, nl, fet.s, fet.g, -op.dIdVg);
        addAt(A, nl, fet.s, fet.s, -op.dIdVs);
        addAt(A, nl, fet.s, fet.b, -op.dIdVb);
        const double ieq = op.ids -
                           op.dIdVd * vIter[static_cast<std::size_t>(fet.d)] -
                           op.dIdVg * vIter[static_cast<std::size_t>(fet.g)] -
                           op.dIdVs * vIter[static_cast<std::size_t>(fet.s)] -
                           op.dIdVb * vIter[static_cast<std::size_t>(fet.b)];
        stampI(rhs, nl, fet.d, fet.s, ieq);
      }

      for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
        const auto& src = nl.vsources()[k];
        const std::size_t br = nl.vsourceBranchIndex(k);
        if (src.p != kGround) {
          A(nl.nodeIndex(src.p), br) += 1.0;
          A(br, nl.nodeIndex(src.p)) += 1.0;
        }
        if (src.n != kGround) {
          A(nl.nodeIndex(src.n), br) -= 1.0;
          A(br, nl.nodeIndex(src.n)) -= 1.0;
        }
        rhs[br] = src.vdc;
      }
      for (std::size_t k = 0; k < nl.vcvs().size(); ++k) {
        const auto& e = nl.vcvs()[k];
        const std::size_t br = nl.vcvsBranchIndex(k);
        if (e.p != kGround) {
          A(nl.nodeIndex(e.p), br) += 1.0;
          A(br, nl.nodeIndex(e.p)) += 1.0;
        }
        if (e.n != kGround) {
          A(nl.nodeIndex(e.n), br) -= 1.0;
          A(br, nl.nodeIndex(e.n)) -= 1.0;
        }
        if (e.cp != kGround) A(br, nl.nodeIndex(e.cp)) -= e.gain;
        if (e.cn != kGround) A(br, nl.nodeIndex(e.cn)) += e.gain;
      }

      if (!lu.factor(A)) return result;
      x = lu.solve(rhs);

      double maxStep = 0.0;
      for (std::size_t i = 1; i < nl.nodeCount(); ++i) {
        const double dv = x[i - 1] - vIter[i];
        maxStep = std::max(maxStep, std::abs(dv));
        vIter[i] = x[i - 1];
      }
      if (maxStep < options_.tolAbs) {
        converged = true;
        break;
      }
    }
    if (!converged) return result;

    // Accept the step: update companion states.
    for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
      const auto& ind = nl.inductors()[k];
      const double vNow = vIter[static_cast<std::size_t>(ind.a)] -
                          vIter[static_cast<std::size_t>(ind.b)];
      inds[k].iPrev = x[nl.inductorBranchIndex(k)];
      inds[k].vPrev = vNow;
    }
    for (auto& cs : caps) {
      const double vNow = vIter[static_cast<std::size_t>(cs.a)] -
                          vIter[static_cast<std::size_t>(cs.b)];
      const double geq = 2.0 * cs.c / h;
      const double iNow = geq * (vNow - cs.vPrev) - cs.iPrev;
      cs.vPrev = vNow;
      cs.iPrev = iNow;
    }
    v = vIter;
    result.times.push_back(static_cast<double>(step) * h);
    result.voltages.push_back(v);
    linalg::Vector br(nBranches, 0.0);
    for (std::size_t k = 0; k < nBranches; ++k) br[k] = x[nl.nodeCount() - 1 + k];
    result.branchCurrents.push_back(std::move(br));
  }
  result.completed = true;
  return result;
}

Waveform TransientResult::waveform(NodeId n) const {
  Waveform w;
  w.t = times;
  w.v.reserve(voltages.size());
  for (const auto& snap : voltages) w.v.push_back(snap[static_cast<std::size_t>(n)]);
  w.valid = completed && !w.v.empty();
  return w;
}

double TransientResult::meanVsourceCurrent(std::size_t vsrcIdx,
                                           double tailFraction) const {
  if (branchCurrents.size() < 2) return 0.0;
  const std::size_t start = static_cast<std::size_t>(
      static_cast<double>(branchCurrents.size()) * (1.0 - tailFraction));
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = std::max<std::size_t>(start, 1); i < branchCurrents.size();
       ++i) {
    sum += std::abs(branchCurrents[i][vsrcIdx]);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::vector<double> risingCrossings(const Waveform& w, double threshold) {
  std::vector<double> times;
  for (std::size_t i = 0; i + 1 < w.v.size(); ++i) {
    if (w.v[i] < threshold && w.v[i + 1] >= threshold) {
      const double frac = (threshold - w.v[i]) / (w.v[i + 1] - w.v[i]);
      times.push_back(w.t[i] + frac * (w.t[i + 1] - w.t[i]));
    }
  }
  return times;
}

double estimateFrequency(const Waveform& w, double threshold,
                         std::size_t minPeriods) {
  const std::vector<double> cross = risingCrossings(w, threshold);
  if (cross.size() < minPeriods + 1) return 0.0;
  // Median period over the second half (post-startup) of the crossings.
  std::vector<double> periods;
  const std::size_t start = cross.size() / 2;
  for (std::size_t i = std::max<std::size_t>(start, 1); i < cross.size(); ++i)
    periods.push_back(cross[i] - cross[i - 1]);
  if (periods.empty()) return 0.0;
  std::nth_element(periods.begin(), periods.begin() + periods.size() / 2,
                   periods.end());
  const double medPeriod = periods[periods.size() / 2];
  return medPeriod > 0.0 ? 1.0 / medPeriod : 0.0;
}

double steadyStateAmplitude(const Waveform& w, double tailFraction) {
  if (w.v.empty()) return 0.0;
  const std::size_t start =
      static_cast<std::size_t>(static_cast<double>(w.v.size()) * (1.0 - tailFraction));
  double lo = w.v[start];
  double hi = w.v[start];
  for (std::size_t i = start; i < w.v.size(); ++i) {
    lo = std::min(lo, w.v[i]);
    hi = std::max(hi, w.v[i]);
  }
  return hi - lo;
}

}  // namespace trdse::sim
