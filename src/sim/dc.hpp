// Nonlinear DC operating-point solver: Newton-Raphson over the MNA system
// with per-node step damping, falling back to gmin stepping and then source
// stepping when the plain iteration fails — the standard SPICE ladder.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "sim/netlist.hpp"

namespace trdse::sim {

struct DcOptions {
  int maxIterations = 200;
  double tolAbs = 1e-9;     ///< absolute node-voltage convergence [V]
  double tolRel = 1e-9;     ///< relative part of the convergence test
  double gmin = 1e-12;      ///< conductance from every node to ground [S]
  double damping = 0.5;     ///< max node-voltage step per Newton iteration [V]
};

struct DcResult {
  bool converged = false;
  int iterations = 0;
  linalg::Vector v;               ///< node voltages incl. ground at index 0
  linalg::Vector branchCurrents;  ///< vsources, vcvs, inductors (netlist order)
  std::vector<MosOp> mosOps;      ///< per-MOSFET operating point (netlist order)
  linalg::Vector diodeConductances;  ///< per-diode gd at the OP

  double nodeVoltage(NodeId n) const { return v[static_cast<std::size_t>(n)]; }
  /// Current through the idx-th voltage source (positive p -> n).
  double vsourceCurrent(std::size_t idx) const { return branchCurrents[idx]; }
};

class DcSolver {
 public:
  explicit DcSolver(const Netlist& netlist, DcOptions options = {});

  /// Solve from an optional initial node-voltage guess (size nodeCount).
  DcResult solve(const linalg::Vector* initialGuess = nullptr) const;

 private:
  DcResult newtonLoop(linalg::Vector v, double gmin, double srcScale,
                      int maxIter) const;

  const Netlist& netlist_;
  DcOptions options_;
};

}  // namespace trdse::sim
