// First-order optimizers over an Mlp's flat parameter space.
#pragma once

#include <memory>

#include "nn/mlp.hpp"

namespace trdse::nn {

/// Interface of a first-order optimizer over an Mlp's flat parameters.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update using the gradients currently accumulated in `net`,
  /// then zero them.
  virtual void step(Mlp& net) = 0;
  /// Drop all optimizer state (moments, step counters).
  virtual void reset() = 0;
  /// Current step size.
  virtual double learningRate() const = 0;
  /// Change the step size (schedules, warm restarts).
  virtual void setLearningRate(double lr) = 0;
};

/// Plain SGD with optional classical momentum.
class SgdOptimizer final : public Optimizer {
 public:
  /// Configure step size and momentum coefficient (0 = vanilla SGD).
  explicit SgdOptimizer(double lr, double momentum = 0.0);
  void step(Mlp& net) override;
  void reset() override { velocity_.clear(); }
  double learningRate() const override { return lr_; }
  void setLearningRate(double lr) override { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  linalg::Vector velocity_;
};

/// Adam (Kingma & Ba) — the default for both the surrogate f_NN and the RL
/// baselines' actor/critic networks.
class AdamOptimizer final : public Optimizer {
 public:
  /// Configure step size and moment decay rates.
  explicit AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-8);
  void step(Mlp& net) override;
  void reset() override;
  double learningRate() const override { return lr_; }
  void setLearningRate(double lr) override { lr_ = lr; }

  // Checkpoint access: Adam's state is (step count, first/second moments);
  // restoring it mid-training resumes the exact bias-corrected update stream.

  /// Updates applied so far (the bias-correction exponent).
  long stepCount() const { return t_; }
  /// First-moment estimate (flat parameter layout; empty before any step).
  const linalg::Vector& firstMoments() const { return m_; }
  /// Second-moment estimate (flat parameter layout; empty before any step).
  const linalg::Vector& secondMoments() const { return v_; }
  /// Install checkpointed state; empty moments mean a freshly-reset optimizer.
  void restoreState(long t, linalg::Vector m, linalg::Vector v) {
    t_ = t;
    m_ = std::move(m);
    v_ = std::move(v);
  }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  long t_ = 0;
  linalg::Vector m_;
  linalg::Vector v_;
};

}  // namespace trdse::nn
