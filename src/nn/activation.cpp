#include "nn/activation.hpp"

#include <cassert>
#include <cmath>

namespace trdse::nn {

std::string_view toString(Activation a) {
  switch (a) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
  }
  return "?";
}

void applyActivation(Activation a, linalg::Vector& x) {
  switch (a) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (double& v : x) v = v > 0.0 ? v : 0.0;
      return;
    case Activation::kTanh:
      for (double& v : x) v = std::tanh(v);
      return;
  }
}

void applyActivationGrad(Activation a, const linalg::Vector& pre,
                         const linalg::Vector& post, linalg::Vector& grad) {
  assert(pre.size() == grad.size() && post.size() == grad.size());
  switch (a) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < grad.size(); ++i)
        if (pre[i] <= 0.0) grad[i] = 0.0;
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < grad.size(); ++i)
        grad[i] *= 1.0 - post[i] * post[i];
      return;
  }
}

}  // namespace trdse::nn
