#include "nn/activation.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace trdse::nn {

namespace {

// Branch-free tanh over a span, built so the whole loop auto-vectorizes:
// tanh(x) = sign(x) · (1 − 2/(e^{2|x|}+1)), with e^t computed by additive
// range reduction (t = k·ln2 + r, two-part ln2) and a degree-13 Taylor
// polynomial for e^r on r ∈ [−ln2/2, ln2/2]; 2^k is assembled directly into
// the exponent bits. Max deviation from std::tanh is ~2e-16 absolute
// (measured over [−6, 6]); ±0, saturation, ±inf and NaN behave like
// std::tanh. Both the per-sample and the batched inference paths call this,
// so they stay bitwise identical to each other.
//
// The scalar libm tanh costs ~12 ns/call and cannot vectorize; at 800
// planning candidates × two hidden layers per TRM step it dominated the
// batched profile, which is why it is hand-rolled here.
void tanhSpan(double* TRDSE_RESTRICT x, std::size_t n) {
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52: round-to-int bias
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    const double a = std::abs(v);
    double t = 2.0 * a;
    // Past t = 40, e^t + 1 == e^t in double precision and tanh == 1.
    if (t > 40.0) t = 40.0;
    double kd = t * kLog2e + kShift;
    // t ∈ [0, 40] keeps k in the low mantissa word of the shifted double.
    const std::int64_t ki = std::bit_cast<std::int64_t>(kd) & 0xFFFFFFFF;
    kd -= kShift;
    const double r = (t - kd * kLn2Hi) - kd * kLn2Lo;
    double p = 1.0 / 6227020800.0;
    p = p * r + 1.0 / 479001600.0;
    p = p * r + 1.0 / 39916800.0;
    p = p * r + 1.0 / 3628800.0;
    p = p * r + 1.0 / 362880.0;
    p = p * r + 1.0 / 40320.0;
    p = p * r + 1.0 / 5040.0;
    p = p * r + 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    const double e2a = p * std::bit_cast<double>((ki + 1023) << 52);
    const double m = 1.0 - 2.0 / (e2a + 1.0);
    x[i] = std::copysign(m, v);  // m >= 0; preserves the sign of -0.0 too
  }
}

}  // namespace

std::string_view toString(Activation a) {
  switch (a) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
  }
  return "?";
}

void applyActivation(Activation a, double* x, std::size_t n) {
  switch (a) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0 ? x[i] : 0.0;
      return;
    case Activation::kTanh:
      tanhSpan(x, n);
      return;
  }
}

void applyActivation(Activation a, linalg::Vector& x) {
  applyActivation(a, x.data(), x.size());
}

void applyActivation(Activation a, linalg::Matrix& x) {
  applyActivation(a, x.data(), x.size());
}

void applyActivationGrad(Activation a, const double* pre, const double* post,
                         double* grad, std::size_t n) {
  switch (a) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < n; ++i)
        if (pre[i] <= 0.0) grad[i] = 0.0;
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) grad[i] *= 1.0 - post[i] * post[i];
      return;
  }
}

void applyActivationGrad(Activation a, const linalg::Vector& pre,
                         const linalg::Vector& post, linalg::Vector& grad) {
  assert(pre.size() == grad.size() && post.size() == grad.size());
  applyActivationGrad(a, pre.data(), post.data(), grad.data(), grad.size());
}

void applyActivationGrad(Activation a, const linalg::Matrix& pre,
                         const linalg::Matrix& post, linalg::Matrix& grad) {
  assert(pre.size() == grad.size() && post.size() == grad.size());
  applyActivationGrad(a, pre.data(), post.data(), grad.data(), grad.size());
}

}  // namespace trdse::nn
