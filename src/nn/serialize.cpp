#include "nn/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

namespace trdse::nn {

namespace {

constexpr std::uint32_t kMlpMagic = 0x544E4E4D;  // "MNNT"
constexpr std::uint32_t kStdMagic = 0x54445453;  // "STDT"
constexpr std::uint32_t kAdamMagic = 0x4D414441;  // "ADAM"

void writeU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void writeU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void writeVec(std::ostream& out, const linalg::Vector& v) {
  writeU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

bool readU32(std::istream& in, std::uint32_t& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

bool readU64(std::istream& in, std::uint64_t& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

bool readVec(std::istream& in, linalg::Vector& v) {
  std::uint64_t n = 0;
  if (!readU64(in, n)) return false;
  if (n > (1ull << 32)) return false;  // sanity bound
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  return static_cast<bool>(in);
}

}  // namespace

void saveMlp(const Mlp& net, std::ostream& out) {
  writeU32(out, kMlpMagic);
  const auto& cfg = net.config();
  writeU64(out, cfg.layerSizes.size());
  for (std::size_t s : cfg.layerSizes) writeU64(out, s);
  writeU32(out, static_cast<std::uint32_t>(cfg.hidden));
  writeU32(out, static_cast<std::uint32_t>(cfg.output));
  writeVec(out, net.getParameters());
}

std::optional<Mlp> loadMlp(std::istream& in) {
  std::uint32_t magic = 0;
  if (!readU32(in, magic) || magic != kMlpMagic) return std::nullopt;
  std::uint64_t nLayers = 0;
  if (!readU64(in, nLayers) || nLayers < 2 || nLayers > 64) return std::nullopt;
  MlpConfig cfg;
  cfg.layerSizes.resize(nLayers);
  for (auto& s : cfg.layerSizes) {
    std::uint64_t v = 0;
    if (!readU64(in, v) || v == 0 || v > (1u << 20)) return std::nullopt;
    s = v;
  }
  std::uint32_t hidden = 0;
  std::uint32_t output = 0;
  if (!readU32(in, hidden) || !readU32(in, output)) return std::nullopt;
  if (hidden > 2 || output > 2) return std::nullopt;
  cfg.hidden = static_cast<Activation>(hidden);
  cfg.output = static_cast<Activation>(output);
  Mlp net(cfg, /*seed=*/0);
  linalg::Vector params;
  if (!readVec(in, params) || params.size() != net.parameterCount())
    return std::nullopt;
  // Reject non-finite parameters: a NaN/Inf weight poisons every downstream
  // prediction silently, so a file carrying one is treated as malformed.
  if (std::any_of(params.begin(), params.end(),
                  [](double p) { return !std::isfinite(p); }))
    return std::nullopt;
  net.setParameters(params);
  return net;
}

bool saveMlpToFile(const Mlp& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  saveMlp(net, out);
  return static_cast<bool>(out);
}

std::optional<Mlp> loadMlpFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return loadMlp(in);
}

void saveStandardizer(const Standardizer& s, std::ostream& out) {
  writeU32(out, kStdMagic);
  writeVec(out, s.mean());
  writeVec(out, s.std());
}

std::optional<Standardizer> loadStandardizer(std::istream& in) {
  std::uint32_t magic = 0;
  if (!readU32(in, magic) || magic != kStdMagic) return std::nullopt;
  linalg::Vector mean;
  linalg::Vector std;
  if (!readVec(in, mean) || !readVec(in, std)) return std::nullopt;
  if (mean.size() != std.size()) return std::nullopt;
  Standardizer s;
  s.set(std::move(mean), std::move(std));
  return s;
}

void saveAdamState(const AdamOptimizer& opt, std::ostream& out) {
  writeU32(out, kAdamMagic);
  writeU64(out, static_cast<std::uint64_t>(opt.stepCount()));
  writeVec(out, opt.firstMoments());
  writeVec(out, opt.secondMoments());
}

bool loadAdamState(std::istream& in, AdamOptimizer& opt) {
  std::uint32_t magic = 0;
  if (!readU32(in, magic) || magic != kAdamMagic) return false;
  std::uint64_t t = 0;
  linalg::Vector m;
  linalg::Vector v;
  if (!readU64(in, t) || !readVec(in, m) || !readVec(in, v)) return false;
  if (m.size() != v.size()) return false;
  // Same rationale as loadMlp: a NaN/Inf moment would silently poison every
  // subsequent parameter update.
  const auto finite = [](const linalg::Vector& x) {
    return std::all_of(x.begin(), x.end(),
                       [](double p) { return std::isfinite(p); });
  };
  if (!finite(m) || !finite(v)) return false;
  opt.restoreState(static_cast<long>(t), std::move(m), std::move(v));
  return true;
}

}  // namespace trdse::nn
