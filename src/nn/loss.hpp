// Regression losses and the supervised mini-batch trainer used for the
// paper's surrogate training loop (Eq. 4: J(θ) = MSE against Spice(X)).
#pragma once

#include <random>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace trdse::nn {

/// Mean-squared error over one sample pair.
double mseLoss(const linalg::Vector& pred, const linalg::Vector& target);

/// dMSE/dpred (factor 2/n included).
linalg::Vector mseGrad(const linalg::Vector& pred, const linalg::Vector& target);

/// Batched MSE over row-paired matrices: writes the per-sample gradient
/// matrix (each row = mseGrad of that row, scaled by `gradScale`) into
/// `grad` and returns the *sum* of per-row mseLoss values. Matches the
/// per-sample helpers row for row.
double mseLossGradBatch(const linalg::Matrix& pred, const linalg::Matrix& target,
                        double gradScale, linalg::Matrix& grad);

/// Summary of one training epoch.
struct TrainStats {
  double meanLoss = 0.0;     ///< mean per-sample loss over the epoch
  std::size_t batches = 0;   ///< optimizer steps taken
};

/// One epoch of shuffled mini-batch MSE training. Gradients are averaged over
/// each batch before the optimizer step. Returns mean per-sample loss.
TrainStats trainEpochMse(Mlp& net, Optimizer& opt,
                         const std::vector<linalg::Vector>& inputs,
                         const std::vector<linalg::Vector>& targets,
                         std::size_t batchSize, std::mt19937_64& rng);

/// Mean MSE over a dataset without touching gradients.
double evaluateMse(const Mlp& net, const std::vector<linalg::Vector>& inputs,
                   const std::vector<linalg::Vector>& targets);

}  // namespace trdse::nn
