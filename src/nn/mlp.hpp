// Multi-layer perceptron — the paper's SPICE function approximator f_NN(X; θ)
// (Eq. 3) and the policy/value networks of the model-free RL baselines.
//
// Parameters are exposed both per-layer and as a flat vector (getParameters /
// setParameters) because TRPO's conjugate-gradient step operates in flat
// parameter space.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "nn/dense_layer.hpp"

namespace trdse::nn {

struct MlpConfig {
  std::vector<std::size_t> layerSizes;  // e.g. {in, h1, h2, out}
  Activation hidden = Activation::kTanh;
  Activation output = Activation::kIdentity;
};

class Mlp {
 public:
  Mlp() = default;
  Mlp(const MlpConfig& config, std::uint64_t seed);

  std::size_t inputDim() const;
  std::size_t outputDim() const;
  const MlpConfig& config() const { return config_; }

  /// Forward pass that caches activations; pair with backward().
  linalg::Vector forward(const linalg::Vector& x);

  /// Stateless inference (no caches touched).
  linalg::Vector predict(const linalg::Vector& x) const;

  /// Backpropagate dL/dy from the most recent forward(); parameter gradients
  /// accumulate until zeroGrad(). Returns dL/dx.
  linalg::Vector backward(const linalg::Vector& gradOut);

  // ---- Batched path (batch × dim matrices; one GEMM per layer) ----

  /// Scratch buffers for allocation-free batched inference. Owned by the
  /// caller so const Mlps can be scored from many sites without contention.
  struct BatchWorkspace {
    linalg::Matrix ping;
    linalg::Matrix pong;
    linalg::Matrix pack;
  };

  /// Batched forward with caches; pair with backwardBatch(). The returned
  /// reference is valid until the next batched call.
  const linalg::Matrix& forwardBatch(const linalg::Matrix& x);

  /// Batched stateless inference into `out` (bitwise identical to calling
  /// predict() row by row). Steady-state calls do not allocate.
  void predictBatch(const linalg::Matrix& x, linalg::Matrix& out,
                    BatchWorkspace& ws) const;

  /// Convenience overload with a throwaway workspace.
  linalg::Matrix predictBatch(const linalg::Matrix& x) const;

  /// Batched backprop from the most recent forwardBatch(); gradients
  /// accumulate until zeroGrad(). Returns dL/dX (valid until the next
  /// batched call).
  const linalg::Matrix& backwardBatch(const linalg::Matrix& gradOut);

  void zeroGrad();
  void reinitialize(std::uint64_t seed);

  std::size_t parameterCount() const;
  linalg::Vector getParameters() const;
  void setParameters(const linalg::Vector& flat);
  linalg::Vector getGradients() const;
  /// Overwrite accumulated gradients from a flat vector (used by TRPO).
  void setGradients(const linalg::Vector& flat);
  /// In-place params += alpha * direction (flat space).
  void addToParameters(const linalg::Vector& direction, double alpha);

  std::vector<DenseLayer>& layers() { return layers_; }
  const std::vector<DenseLayer>& layers() const { return layers_; }

 private:
  MlpConfig config_;
  std::vector<DenseLayer> layers_;
};

/// Average L2 gradient-norm clipping over the flat gradient; returns the
/// pre-clip norm (RL trainers log it).
double clipGradNorm(Mlp& net, double maxNorm);

}  // namespace trdse::nn
