// Multi-layer perceptron — the paper's SPICE function approximator f_NN(X; θ)
// (Eq. 3) and the policy/value networks of the model-free RL baselines.
//
// Parameters are exposed both per-layer and as a flat vector (getParameters /
// setParameters) because TRPO's conjugate-gradient step operates in flat
// parameter space.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "nn/dense_layer.hpp"

namespace trdse::nn {

/// Network shape and activation choice.
struct MlpConfig {
  std::vector<std::size_t> layerSizes;  ///< widths, e.g. {in, h1, h2, out}
  Activation hidden = Activation::kTanh;      ///< hidden-layer activation
  Activation output = Activation::kIdentity;  ///< output-layer activation
};

/// A plain fully-connected network with per-sample and batched
/// forward/backward paths that are bitwise identical to each other.
class Mlp {
 public:
  Mlp() = default;
  /// Build and Xavier/He-initialize from a config.
  Mlp(const MlpConfig& config, std::uint64_t seed);

  /// Input width (first layer size).
  std::size_t inputDim() const;
  /// Output width (last layer size).
  std::size_t outputDim() const;
  /// The shape this network was built from.
  const MlpConfig& config() const { return config_; }

  /// Forward pass that caches activations; pair with backward().
  linalg::Vector forward(const linalg::Vector& x);

  /// Stateless inference (no caches touched).
  linalg::Vector predict(const linalg::Vector& x) const;

  /// Backpropagate dL/dy from the most recent forward(); parameter gradients
  /// accumulate until zeroGrad(). Returns dL/dx.
  linalg::Vector backward(const linalg::Vector& gradOut);

  // ---- Batched path (batch × dim matrices; one GEMM per layer) ----

  /// Scratch buffers for allocation-free batched inference. Owned by the
  /// caller so const Mlps can be scored from many sites without contention.
  struct BatchWorkspace {
    linalg::Matrix ping;
    linalg::Matrix pong;
    linalg::Matrix pack;
  };

  /// Batched forward with caches; pair with backwardBatch(). The returned
  /// reference is valid until the next batched call.
  const linalg::Matrix& forwardBatch(const linalg::Matrix& x);

  /// Batched stateless inference into `out` (bitwise identical to calling
  /// predict() row by row). Steady-state calls do not allocate.
  void predictBatch(const linalg::Matrix& x, linalg::Matrix& out,
                    BatchWorkspace& ws) const;

  /// Convenience overload with a throwaway workspace.
  linalg::Matrix predictBatch(const linalg::Matrix& x) const;

  /// Batched backprop from the most recent forwardBatch(); gradients
  /// accumulate until zeroGrad(). Returns dL/dX (valid until the next
  /// batched call).
  const linalg::Matrix& backwardBatch(const linalg::Matrix& gradOut);

  /// Clear all accumulated parameter gradients.
  void zeroGrad();
  /// Re-draw all weights from the initializer (restart behaviour).
  void reinitialize(std::uint64_t seed);

  /// Total number of weights + biases.
  std::size_t parameterCount() const;
  /// All parameters as one flat vector (layer order, weights then bias).
  linalg::Vector getParameters() const;
  /// Overwrite all parameters from a flat vector.
  void setParameters(const linalg::Vector& flat);
  /// Accumulated gradients as one flat vector (same layout as parameters).
  linalg::Vector getGradients() const;
  /// Overwrite accumulated gradients from a flat vector (used by TRPO).
  void setGradients(const linalg::Vector& flat);
  /// In-place params += alpha * direction (flat space).
  void addToParameters(const linalg::Vector& direction, double alpha);

  /// Layer access (optimizers walk these).
  std::vector<DenseLayer>& layers() { return layers_; }
  /// Read-only layer access.
  const std::vector<DenseLayer>& layers() const { return layers_; }

 private:
  MlpConfig config_;
  std::vector<DenseLayer> layers_;
};

/// Average L2 gradient-norm clipping over the flat gradient; returns the
/// pre-clip norm (RL trainers log it).
double clipGradNorm(Mlp& net, double maxNorm);

}  // namespace trdse::nn
