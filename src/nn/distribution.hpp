// Categorical-distribution utilities shared by the model-free RL baselines
// (multi-discrete AutoCkt-style action heads for A2C / PPO / TRPO).
#pragma once

#include <random>

#include "linalg/matrix.hpp"

namespace trdse::nn {

/// Numerically-stable softmax.
linalg::Vector softmax(const linalg::Vector& logits);

/// Numerically-stable log-softmax.
linalg::Vector logSoftmax(const linalg::Vector& logits);

/// Sample an index from softmax(logits).
std::size_t sampleCategorical(const linalg::Vector& logits, std::mt19937_64& rng);

/// argmax of the logits (greedy action).
std::size_t argmaxIndex(const linalg::Vector& logits);

/// Entropy of softmax(logits).
double categoricalEntropy(const linalg::Vector& logits);

/// KL( softmax(p) || softmax(q) ).
double categoricalKl(const linalg::Vector& logitsP, const linalg::Vector& logitsQ);

/// d/dlogits of log softmax(logits)[action]  ==  onehot(action) - softmax.
linalg::Vector logProbGrad(const linalg::Vector& logits, std::size_t action);

}  // namespace trdse::nn
