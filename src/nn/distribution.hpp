// Categorical-distribution utilities shared by the model-free RL baselines
// (multi-discrete AutoCkt-style action heads for A2C / PPO / TRPO).
#pragma once

#include <random>

#include "linalg/matrix.hpp"

namespace trdse::nn {

/// Numerically-stable softmax.
linalg::Vector softmax(const linalg::Vector& logits);

/// Numerically-stable log-softmax.
linalg::Vector logSoftmax(const linalg::Vector& logits);

/// Sample an index from softmax(logits).
std::size_t sampleCategorical(const linalg::Vector& logits, std::mt19937_64& rng);

/// argmax of the logits (greedy action).
std::size_t argmaxIndex(const linalg::Vector& logits);

/// Entropy of softmax(logits).
double categoricalEntropy(const linalg::Vector& logits);

/// KL( softmax(p) || softmax(q) ).
double categoricalKl(const linalg::Vector& logitsP, const linalg::Vector& logitsQ);

/// d/dlogits of log softmax(logits)[action]  ==  onehot(action) - softmax.
linalg::Vector logProbGrad(const linalg::Vector& logits, std::size_t action);

// ---- Batched (row-major matrix) variants ----
//
// Each row of `logits` holds the head-major logits of one sample: a
// concatenation of `segment`-wide blocks, one block per categorical head.
// The transforms apply independently per block with the exact arithmetic of
// the per-vector functions above (max-shift, ascending-index summation), so
// the batched results are bitwise identical to calling the scalar versions
// block by block. Outputs are resized by the callee; capacity persists, so
// steady-state calls reuse storage.

/// Per-block softmax of every row of `logits` into `out`.
/// @param segment block width; must divide logits.cols() evenly.
void softmaxSegments(const linalg::Matrix& logits, std::size_t segment,
                     linalg::Matrix& out);

/// Per-block log-softmax of every row of `logits` into `out`.
/// @param segment block width; must divide logits.cols() evenly.
void logSoftmaxSegments(const linalg::Matrix& logits, std::size_t segment,
                        linalg::Matrix& out);

}  // namespace trdse::nn
