#include "nn/distribution.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace trdse::nn {

linalg::Vector softmax(const linalg::Vector& logits) {
  assert(!logits.empty());
  const double mx = *std::max_element(logits.begin(), logits.end());
  linalg::Vector p(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - mx);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

linalg::Vector logSoftmax(const linalg::Vector& logits) {
  assert(!logits.empty());
  const double mx = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double v : logits) sum += std::exp(v - mx);
  const double logZ = mx + std::log(sum);
  linalg::Vector lp(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) lp[i] = logits[i] - logZ;
  return lp;
}

std::size_t sampleCategorical(const linalg::Vector& logits, std::mt19937_64& rng) {
  const linalg::Vector p = softmax(logits);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double r = u(rng);
  for (std::size_t i = 0; i < p.size(); ++i) {
    r -= p[i];
    if (r <= 0.0) return i;
  }
  return p.size() - 1;
}

std::size_t argmaxIndex(const linalg::Vector& logits) {
  return static_cast<std::size_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double categoricalEntropy(const linalg::Vector& logits) {
  const linalg::Vector lp = logSoftmax(logits);
  double h = 0.0;
  for (double v : lp) h -= std::exp(v) * v;
  return h;
}

double categoricalKl(const linalg::Vector& logitsP, const linalg::Vector& logitsQ) {
  assert(logitsP.size() == logitsQ.size());
  const linalg::Vector lp = logSoftmax(logitsP);
  const linalg::Vector lq = logSoftmax(logitsQ);
  double kl = 0.0;
  for (std::size_t i = 0; i < lp.size(); ++i) kl += std::exp(lp[i]) * (lp[i] - lq[i]);
  return kl;
}

linalg::Vector logProbGrad(const linalg::Vector& logits, std::size_t action) {
  assert(action < logits.size());
  linalg::Vector g = softmax(logits);
  for (double& v : g) v = -v;
  g[action] += 1.0;
  return g;
}

void softmaxSegments(const linalg::Matrix& logits, std::size_t segment,
                     linalg::Matrix& out) {
  assert(segment > 0 && logits.cols() % segment == 0);
  out.resize(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const double* in = logits.row(r);
    double* o = out.row(r);
    for (std::size_t s0 = 0; s0 < logits.cols(); s0 += segment) {
      double mx = in[s0];
      for (std::size_t i = 1; i < segment; ++i) mx = std::max(mx, in[s0 + i]);
      double sum = 0.0;
      for (std::size_t i = 0; i < segment; ++i) {
        o[s0 + i] = std::exp(in[s0 + i] - mx);
        sum += o[s0 + i];
      }
      for (std::size_t i = 0; i < segment; ++i) o[s0 + i] /= sum;
    }
  }
}

void logSoftmaxSegments(const linalg::Matrix& logits, std::size_t segment,
                        linalg::Matrix& out) {
  assert(segment > 0 && logits.cols() % segment == 0);
  out.resize(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const double* in = logits.row(r);
    double* o = out.row(r);
    for (std::size_t s0 = 0; s0 < logits.cols(); s0 += segment) {
      double mx = in[s0];
      for (std::size_t i = 1; i < segment; ++i) mx = std::max(mx, in[s0 + i]);
      double sum = 0.0;
      for (std::size_t i = 0; i < segment; ++i) sum += std::exp(in[s0 + i] - mx);
      const double logZ = mx + std::log(sum);
      for (std::size_t i = 0; i < segment; ++i) o[s0 + i] = in[s0 + i] - logZ;
    }
  }
}

}  // namespace trdse::nn
