// Element-wise activation functions and their derivatives.
#pragma once

#include <cstdint>
#include <string_view>

#include "linalg/matrix.hpp"

namespace trdse::nn {

/// Supported element-wise activations.
enum class Activation : std::uint8_t { kIdentity = 0, kRelu = 1, kTanh = 2 };

/// Human-readable activation name.
std::string_view toString(Activation a);

/// x[i] = act(x[i]) over a raw span — the batched kernels hand whole
/// activation matrices (contiguous row-major storage) to this.
void applyActivation(Activation a, double* x, std::size_t n);

/// y[i] = act(x[i])
void applyActivation(Activation a, linalg::Vector& x);

/// Whole-matrix activation (batch × dim, applied element-wise).
void applyActivation(Activation a, linalg::Matrix& x);

/// grad[i] *= act'(pre[i]) over raw spans; `post` is the activation output
/// (tanh derivative is cheapest from `post`).
void applyActivationGrad(Activation a, const double* pre, const double* post,
                         double* grad, std::size_t n);

/// grad[i] *= act'(pre[i]) where `pre` is the pre-activation input and `post`
/// the activation output (tanh derivative is cheapest from `post`).
void applyActivationGrad(Activation a, const linalg::Vector& pre,
                         const linalg::Vector& post, linalg::Vector& grad);

/// Whole-matrix activation gradient (batch × dim, element-wise).
void applyActivationGrad(Activation a, const linalg::Matrix& pre,
                         const linalg::Matrix& post, linalg::Matrix& grad);

}  // namespace trdse::nn
