// Element-wise activation functions and their derivatives.
#pragma once

#include <cstdint>
#include <string_view>

#include "linalg/matrix.hpp"

namespace trdse::nn {

enum class Activation : std::uint8_t { kIdentity = 0, kRelu = 1, kTanh = 2 };

std::string_view toString(Activation a);

/// y[i] = act(x[i])
void applyActivation(Activation a, linalg::Vector& x);

/// grad[i] *= act'(pre[i]) where `pre` is the pre-activation input and `post`
/// the activation output (tanh derivative is cheapest from `post`).
void applyActivationGrad(Activation a, const linalg::Vector& pre,
                         const linalg::Vector& post, linalg::Vector& grad);

}  // namespace trdse::nn
