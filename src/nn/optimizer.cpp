#include "nn/optimizer.hpp"

#include <cmath>

namespace trdse::nn {

SgdOptimizer::SgdOptimizer(double lr, double momentum)
    : lr_(lr), momentum_(momentum) {}

void SgdOptimizer::step(Mlp& net) {
  linalg::Vector g = net.getGradients();
  if (momentum_ > 0.0) {
    if (velocity_.size() != g.size()) velocity_.assign(g.size(), 0.0);
    for (std::size_t i = 0; i < g.size(); ++i) {
      velocity_[i] = momentum_ * velocity_[i] + g[i];
      g[i] = velocity_[i];
    }
  }
  net.addToParameters(g, -lr_);
  net.zeroGrad();
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void AdamOptimizer::reset() {
  t_ = 0;
  m_.clear();
  v_.clear();
}

void AdamOptimizer::step(Mlp& net) {
  const linalg::Vector g = net.getGradients();
  if (m_.size() != g.size()) {
    m_.assign(g.size(), 0.0);
    v_.assign(g.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  linalg::Vector update(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * g[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * g[i] * g[i];
    const double mHat = m_[i] / bc1;
    const double vHat = v_[i] / bc2;
    update[i] = mHat / (std::sqrt(vHat) + eps_);
  }
  net.addToParameters(update, -lr_);
  net.zeroGrad();
}

}  // namespace trdse::nn
