// Binary (de)serialization of networks and scalers.
//
// Needed by the process-porting experiment (Table II): the 45nm search's
// optimal network weights are saved and loaded as the warm start of the
// 22nm search ("weight sharing" strategy).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "nn/mlp.hpp"
#include "nn/scaler.hpp"

namespace trdse::nn {

/// Write a network (shape + parameters) to a binary stream.
void saveMlp(const Mlp& net, std::ostream& out);
/// Read a network written by saveMlp; nullopt on malformed input.
std::optional<Mlp> loadMlp(std::istream& in);

/// saveMlp to a file; false when the file cannot be written.
bool saveMlpToFile(const Mlp& net, const std::string& path);
/// loadMlp from a file; nullopt when missing or malformed.
std::optional<Mlp> loadMlpFromFile(const std::string& path);

/// Write a fitted standardizer to a binary stream.
void saveStandardizer(const Standardizer& s, std::ostream& out);
/// Read a standardizer written by saveStandardizer; nullopt on malformed
/// input.
std::optional<Standardizer> loadStandardizer(std::istream& in);

}  // namespace trdse::nn
