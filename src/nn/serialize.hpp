// Binary (de)serialization of networks and scalers.
//
// Needed by the process-porting experiment (Table II): the 45nm search's
// optimal network weights are saved and loaded as the warm start of the
// 22nm search ("weight sharing" strategy).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/scaler.hpp"

namespace trdse::nn {

/// Write a network (shape + parameters) to a binary stream.
void saveMlp(const Mlp& net, std::ostream& out);
/// Read a network written by saveMlp; nullopt on malformed input — including
/// parameter vectors containing non-finite values (NaN/Inf never silently
/// enters a restored network).
std::optional<Mlp> loadMlp(std::istream& in);

/// saveMlp to a file; false when the file cannot be written.
bool saveMlpToFile(const Mlp& net, const std::string& path);
/// loadMlp from a file; nullopt when missing or malformed.
std::optional<Mlp> loadMlpFromFile(const std::string& path);

/// Write a fitted standardizer to a binary stream.
void saveStandardizer(const Standardizer& s, std::ostream& out);
/// Read a standardizer written by saveStandardizer; nullopt on malformed
/// input. Zero-variance (degenerate) columns round-trip exactly.
std::optional<Standardizer> loadStandardizer(std::istream& in);

/// Write an Adam optimizer's full state — step count and both moment vectors
/// — so mid-training checkpoints resume the exact bias-corrected update
/// stream (the src/io checkpoint subsystem builds on this).
void saveAdamState(const AdamOptimizer& opt, std::ostream& out);
/// Read state written by saveAdamState into `opt`; false on malformed input
/// (the optimizer is left untouched then).
bool loadAdamState(std::istream& in, AdamOptimizer& opt);

}  // namespace trdse::nn
