// Binary (de)serialization of networks and scalers.
//
// Needed by the process-porting experiment (Table II): the 45nm search's
// optimal network weights are saved and loaded as the warm start of the
// 22nm search ("weight sharing" strategy).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "nn/mlp.hpp"
#include "nn/scaler.hpp"

namespace trdse::nn {

void saveMlp(const Mlp& net, std::ostream& out);
std::optional<Mlp> loadMlp(std::istream& in);

bool saveMlpToFile(const Mlp& net, const std::string& path);
std::optional<Mlp> loadMlpFromFile(const std::string& path);

void saveStandardizer(const Standardizer& s, std::ostream& out);
std::optional<Standardizer> loadStandardizer(std::istream& in);

}  // namespace trdse::nn
