#include "nn/scaler.hpp"

#include <cassert>
#include <cmath>

namespace trdse::nn {

MinMaxScaler::MinMaxScaler(linalg::Vector lo, linalg::Vector hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  assert(lo_.size() == hi_.size());
  for (std::size_t i = 0; i < lo_.size(); ++i) assert(hi_[i] >= lo_[i]);
}

linalg::Vector MinMaxScaler::transform(const linalg::Vector& x) const {
  assert(x.size() == lo_.size());
  linalg::Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double span = hi_[i] - lo_[i];
    z[i] = span > 0.0 ? 2.0 * (x[i] - lo_[i]) / span - 1.0 : 0.0;
  }
  return z;
}

linalg::Vector MinMaxScaler::inverse(const linalg::Vector& z) const {
  assert(z.size() == lo_.size());
  linalg::Vector x(z.size());
  for (std::size_t i = 0; i < z.size(); ++i)
    x[i] = lo_[i] + (z[i] + 1.0) * 0.5 * (hi_[i] - lo_[i]);
  return x;
}

void MinMaxScaler::transform(const linalg::Matrix& x, linalg::Matrix& out) const {
  assert(x.cols() == lo_.size());
  out.resize(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.row(r);
    double* zr = out.row(r);
    for (std::size_t i = 0; i < x.cols(); ++i) {
      const double span = hi_[i] - lo_[i];
      zr[i] = span > 0.0 ? 2.0 * (xr[i] - lo_[i]) / span - 1.0 : 0.0;
    }
  }
}

void MinMaxScaler::inverse(const linalg::Matrix& z, linalg::Matrix& out) const {
  assert(z.cols() == lo_.size());
  out.resize(z.rows(), z.cols());
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const double* zr = z.row(r);
    double* xr = out.row(r);
    for (std::size_t i = 0; i < z.cols(); ++i)
      xr[i] = lo_[i] + (zr[i] + 1.0) * 0.5 * (hi_[i] - lo_[i]);
  }
}

void Standardizer::fit(const std::vector<linalg::Vector>& samples) {
  assert(!samples.empty());
  const std::size_t d = samples.front().size();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (const auto& s : samples) {
    assert(s.size() == d);
    for (std::size_t i = 0; i < d; ++i) mean_[i] += s[i];
  }
  for (double& m : mean_) m /= static_cast<double>(samples.size());
  for (const auto& s : samples)
    for (std::size_t i = 0; i < d; ++i) {
      const double dd = s[i] - mean_[i];
      std_[i] += dd * dd;
    }
  for (double& v : std_) {
    v = std::sqrt(v / static_cast<double>(samples.size()));
    if (v < 1e-12) v = 1.0;  // degenerate dimension: centre only
  }
}

linalg::Vector Standardizer::transform(const linalg::Vector& x) const {
  assert(x.size() == mean_.size());
  linalg::Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = (x[i] - mean_[i]) / std_[i];
  return z;
}

linalg::Vector Standardizer::inverse(const linalg::Vector& z) const {
  assert(z.size() == mean_.size());
  linalg::Vector x(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) x[i] = z[i] * std_[i] + mean_[i];
  return x;
}

void Standardizer::transform(const linalg::Matrix& x, linalg::Matrix& out) const {
  assert(x.cols() == mean_.size());
  out.resize(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.row(r);
    double* zr = out.row(r);
    for (std::size_t i = 0; i < x.cols(); ++i)
      zr[i] = (xr[i] - mean_[i]) / std_[i];
  }
}

void Standardizer::inverse(const linalg::Matrix& z, linalg::Matrix& out) const {
  assert(z.cols() == mean_.size());
  out.resize(z.rows(), z.cols());
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const double* zr = z.row(r);
    double* xr = out.row(r);
    for (std::size_t i = 0; i < z.cols(); ++i)
      xr[i] = zr[i] * std_[i] + mean_[i];
  }
}

void Standardizer::set(linalg::Vector mean, linalg::Vector std) {
  assert(mean.size() == std.size());
  mean_ = std::move(mean);
  std_ = std::move(std);
}

}  // namespace trdse::nn
