// A fully-connected layer with a fused activation: y = act(W x + b).
//
// Gradients accumulate into gradW/gradB until zeroGrad(); backward() returns
// dL/dx so layers can be chained by the owning Mlp.
#pragma once

#include <cstdint>
#include <random>

#include "linalg/matrix.hpp"
#include "nn/activation.hpp"

namespace trdse::nn {

/// One fully-connected layer (y = act(W x + b)) with per-sample and batched
/// paths.
class DenseLayer {
 public:
  /// Construct with zeroed weights; call initWeights() before use.
  DenseLayer(std::size_t inDim, std::size_t outDim, Activation act);

  /// Xavier/Glorot uniform for tanh/identity, He for relu.
  void initWeights(std::mt19937_64& rng);

  /// Forward pass; caches input/pre-activation/output for backward().
  linalg::Vector forward(const linalg::Vector& x);

  /// Forward without touching caches (safe for concurrent inference reuse
  /// of the math, though the object itself is not thread-safe).
  linalg::Vector predict(const linalg::Vector& x) const;

  /// Given dL/dy, accumulate dL/dW and dL/db, return dL/dx.
  linalg::Vector backward(const linalg::Vector& gradOut);

  // ---- Batched path (batch × dim row-major matrices) ----
  //
  // One GEMM per layer instead of one matVec per sample; the cache matrices
  // persist across calls, so the steady-state training/planning loop does not
  // allocate. Results are bitwise identical to the per-sample methods.

  /// Batched forward; caches the batch for backwardBatch(). Returns the
  /// activation matrix (valid until the next batched call on this layer).
  const linalg::Matrix& forwardBatch(const linalg::Matrix& x);

  /// Batched stateless inference: out = act(x · W^T + b). `packBuf` receives
  /// the packed transpose of the weights; pass a caller-owned scratch matrix
  /// to keep repeated calls allocation-free.
  void predictBatch(const linalg::Matrix& x, linalg::Matrix& out,
                    linalg::Matrix& packBuf) const;

  /// Batched backward for the most recent forwardBatch(): accumulates dL/dW
  /// and dL/db over the batch (row order, matching per-sample accumulation)
  /// and returns dL/dX (valid until the next batched call on this layer).
  const linalg::Matrix& backwardBatch(const linalg::Matrix& gradOut);

  /// Clear accumulated weight/bias gradients.
  void zeroGrad();

  /// Input width.
  std::size_t inDim() const { return weights_.cols(); }
  /// Output width.
  std::size_t outDim() const { return weights_.rows(); }
  /// Fused activation applied after the affine map.
  Activation activation() const { return act_; }
  /// Number of weights + biases.
  std::size_t parameterCount() const { return weights_.size() + bias_.size(); }

  /// Weight matrix (outDim × inDim), mutable for optimizers.
  linalg::Matrix& weights() { return weights_; }
  /// Weight matrix, read-only.
  const linalg::Matrix& weights() const { return weights_; }
  /// Bias vector, mutable for optimizers.
  linalg::Vector& bias() { return bias_; }
  /// Bias vector, read-only.
  const linalg::Vector& bias() const { return bias_; }
  /// Accumulated weight gradient, read-only.
  const linalg::Matrix& gradWeights() const { return gradW_; }
  /// Accumulated bias gradient, read-only.
  const linalg::Vector& gradBias() const { return gradB_; }
  /// Accumulated weight gradient, mutable (optimizers consume it).
  linalg::Matrix& gradWeights() { return gradW_; }
  /// Accumulated bias gradient, mutable.
  linalg::Vector& gradBias() { return gradB_; }

 private:
  linalg::Matrix weights_;  // outDim x inDim
  linalg::Vector bias_;     // outDim
  linalg::Matrix gradW_;
  linalg::Vector gradB_;
  Activation act_;

  // Caches from the most recent forward().
  linalg::Vector lastInput_;
  linalg::Vector lastPre_;
  linalg::Vector lastOut_;

  // Caches/workspaces for the batched path; capacity persists across calls.
  linalg::Matrix lastInputB_;
  linalg::Matrix lastPreB_;
  linalg::Matrix lastOutB_;
  linalg::Matrix packB_;    // W^T, repacked per batched call
  linalg::Matrix gradOutB_; // activation-grad workspace
  linalg::Matrix gradInB_;  // returned dL/dX
};

}  // namespace trdse::nn
