#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace trdse::nn {

double mseLoss(const linalg::Vector& pred, const linalg::Vector& target) {
  assert(pred.size() == target.size());
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    s += d * d;
  }
  return s / static_cast<double>(pred.size());
}

linalg::Vector mseGrad(const linalg::Vector& pred, const linalg::Vector& target) {
  assert(pred.size() == target.size());
  linalg::Vector g(pred.size());
  const double scale = 2.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i)
    g[i] = scale * (pred[i] - target[i]);
  return g;
}

TrainStats trainEpochMse(Mlp& net, Optimizer& opt,
                         const std::vector<linalg::Vector>& inputs,
                         const std::vector<linalg::Vector>& targets,
                         std::size_t batchSize, std::mt19937_64& rng) {
  assert(inputs.size() == targets.size());
  TrainStats stats;
  if (inputs.empty()) return stats;
  batchSize = std::max<std::size_t>(1, batchSize);

  std::vector<std::size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  double lossSum = 0.0;
  std::size_t seen = 0;
  for (std::size_t start = 0; start < order.size(); start += batchSize) {
    const std::size_t end = std::min(order.size(), start + batchSize);
    const double invB = 1.0 / static_cast<double>(end - start);
    net.zeroGrad();
    for (std::size_t k = start; k < end; ++k) {
      const auto& x = inputs[order[k]];
      const auto& y = targets[order[k]];
      const linalg::Vector pred = net.forward(x);
      lossSum += mseLoss(pred, y);
      linalg::Vector g = mseGrad(pred, y);
      for (double& v : g) v *= invB;
      net.backward(g);
      ++seen;
    }
    opt.step(net);
    ++stats.batches;
  }
  stats.meanLoss = lossSum / static_cast<double>(seen);
  return stats;
}

double evaluateMse(const Mlp& net, const std::vector<linalg::Vector>& inputs,
                   const std::vector<linalg::Vector>& targets) {
  assert(inputs.size() == targets.size());
  if (inputs.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    s += mseLoss(net.predict(inputs[i]), targets[i]);
  return s / static_cast<double>(inputs.size());
}

}  // namespace trdse::nn
