#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace trdse::nn {

double mseLoss(const linalg::Vector& pred, const linalg::Vector& target) {
  assert(pred.size() == target.size());
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    s += d * d;
  }
  return s / static_cast<double>(pred.size());
}

linalg::Vector mseGrad(const linalg::Vector& pred, const linalg::Vector& target) {
  assert(pred.size() == target.size());
  linalg::Vector g(pred.size());
  const double scale = 2.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i)
    g[i] = scale * (pred[i] - target[i]);
  return g;
}

double mseLossGradBatch(const linalg::Matrix& pred, const linalg::Matrix& target,
                        double gradScale, linalg::Matrix& grad) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  grad.resize(pred.rows(), pred.cols());
  const std::size_t n = pred.cols();
  const double scale = 2.0 / static_cast<double>(n);
  double lossSum = 0.0;
  for (std::size_t r = 0; r < pred.rows(); ++r) {
    const double* pr = pred.row(r);
    const double* tr = target.row(r);
    double* gr = grad.row(r);
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double d = pr[j] - tr[j];
      s += d * d;
      // Two sequential multiplies, matching mseGrad followed by the batch
      // rescale in the per-sample trainer bit for bit.
      gr[j] = scale * d;
      gr[j] *= gradScale;
    }
    lossSum += s / static_cast<double>(n);
  }
  return lossSum;
}

TrainStats trainEpochMse(Mlp& net, Optimizer& opt,
                         const std::vector<linalg::Vector>& inputs,
                         const std::vector<linalg::Vector>& targets,
                         std::size_t batchSize, std::mt19937_64& rng) {
  assert(inputs.size() == targets.size());
  TrainStats stats;
  if (inputs.empty()) return stats;
  batchSize = std::max<std::size_t>(1, batchSize);

  std::vector<std::size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  // Gather each shuffled mini-batch into matrices and run true batched
  // forward/backward GEMM passes. Buffer capacity persists across batches.
  const std::size_t inDim = net.inputDim();
  const std::size_t outDim = net.outputDim();
  linalg::Matrix bx;
  linalg::Matrix by;
  linalg::Matrix grad;

  double lossSum = 0.0;
  std::size_t seen = 0;
  for (std::size_t start = 0; start < order.size(); start += batchSize) {
    const std::size_t end = std::min(order.size(), start + batchSize);
    const std::size_t b = end - start;
    const double invB = 1.0 / static_cast<double>(b);
    bx.resize(b, inDim);
    by.resize(b, outDim);
    for (std::size_t k = start; k < end; ++k) {
      const auto& x = inputs[order[k]];
      const auto& y = targets[order[k]];
      assert(x.size() == inDim && y.size() == outDim);
      std::copy(x.begin(), x.end(), bx.row(k - start));
      std::copy(y.begin(), y.end(), by.row(k - start));
    }
    net.zeroGrad();
    const linalg::Matrix& pred = net.forwardBatch(bx);
    lossSum += mseLossGradBatch(pred, by, invB, grad);
    net.backwardBatch(grad);
    opt.step(net);
    seen += b;
    ++stats.batches;
  }
  stats.meanLoss = lossSum / static_cast<double>(seen);
  return stats;
}

double evaluateMse(const Mlp& net, const std::vector<linalg::Vector>& inputs,
                   const std::vector<linalg::Vector>& targets) {
  assert(inputs.size() == targets.size());
  if (inputs.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    s += mseLoss(net.predict(inputs[i]), targets[i]);
  return s / static_cast<double>(inputs.size());
}

}  // namespace trdse::nn
