// Feature scaling for the surrogate network.
//
// The sizing vector spans decades (widths in µm, capacitors in pF) and the
// measurement vector mixes dB, Hz and mW — raw MSE training would be dominated
// by whichever unit is numerically largest. MinMaxScaler maps sizes to [-1,1]
// from their declared ranges; Standardizer z-scores measurements from the
// trajectory collected so far.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace trdse::nn {

/// Affine map of each dimension from [lo_i, hi_i] to [-1, 1].
class MinMaxScaler {
 public:
  MinMaxScaler() = default;
  /// Bind per-dimension ranges.
  MinMaxScaler(linalg::Vector lo, linalg::Vector hi);

  /// Number of scaled dimensions.
  std::size_t dim() const { return lo_.size(); }
  /// Map a raw point into [-1, 1]^dim.
  linalg::Vector transform(const linalg::Vector& x) const;
  /// Map a scaled point back to raw units.
  linalg::Vector inverse(const linalg::Vector& z) const;

  /// Row-wise batched variants (each row one sample); `out` is resized and
  /// reuses capacity across calls.
  void transform(const linalg::Matrix& x, linalg::Matrix& out) const;
  void inverse(const linalg::Matrix& z, linalg::Matrix& out) const;

  /// Per-dimension lower bounds.
  const linalg::Vector& lo() const { return lo_; }
  /// Per-dimension upper bounds.
  const linalg::Vector& hi() const { return hi_; }

 private:
  linalg::Vector lo_;
  linalg::Vector hi_;
};

/// Per-dimension z-score normalizer fitted from samples; degenerate
/// dimensions (zero variance) pass through centred but unscaled.
class Standardizer {
 public:
  /// Estimate per-dimension mean/std from samples.
  void fit(const std::vector<linalg::Vector>& samples);
  /// Whether fit() (or set()) has been called.
  bool fitted() const { return !mean_.empty(); }
  /// Number of scaled dimensions.
  std::size_t dim() const { return mean_.size(); }

  /// z-score a raw point.
  linalg::Vector transform(const linalg::Vector& x) const;
  /// Undo the z-score transform.
  linalg::Vector inverse(const linalg::Vector& z) const;

  /// Row-wise batched variants (each row one sample); `out` is resized and
  /// reuses capacity across calls. Element-wise identical to the vector
  /// overloads applied per row.
  void transform(const linalg::Matrix& x, linalg::Matrix& out) const;
  void inverse(const linalg::Matrix& z, linalg::Matrix& out) const;

  /// Fitted per-dimension means.
  const linalg::Vector& mean() const { return mean_; }
  /// Fitted per-dimension standard deviations.
  const linalg::Vector& std() const { return std_; }
  /// Install precomputed statistics (deserialization).
  void set(linalg::Vector mean, linalg::Vector std);

 private:
  linalg::Vector mean_;
  linalg::Vector std_;
};

}  // namespace trdse::nn
