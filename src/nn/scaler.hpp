// Feature scaling for the surrogate network.
//
// The sizing vector spans decades (widths in µm, capacitors in pF) and the
// measurement vector mixes dB, Hz and mW — raw MSE training would be dominated
// by whichever unit is numerically largest. MinMaxScaler maps sizes to [-1,1]
// from their declared ranges; Standardizer z-scores measurements from the
// trajectory collected so far.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace trdse::nn {

/// Affine map of each dimension from [lo_i, hi_i] to [-1, 1].
class MinMaxScaler {
 public:
  MinMaxScaler() = default;
  MinMaxScaler(linalg::Vector lo, linalg::Vector hi);

  std::size_t dim() const { return lo_.size(); }
  linalg::Vector transform(const linalg::Vector& x) const;
  linalg::Vector inverse(const linalg::Vector& z) const;

  /// Row-wise batched variants (each row one sample); `out` is resized and
  /// reuses capacity across calls.
  void transform(const linalg::Matrix& x, linalg::Matrix& out) const;
  void inverse(const linalg::Matrix& z, linalg::Matrix& out) const;

  const linalg::Vector& lo() const { return lo_; }
  const linalg::Vector& hi() const { return hi_; }

 private:
  linalg::Vector lo_;
  linalg::Vector hi_;
};

/// Per-dimension z-score normalizer fitted from samples; degenerate
/// dimensions (zero variance) pass through centred but unscaled.
class Standardizer {
 public:
  void fit(const std::vector<linalg::Vector>& samples);
  bool fitted() const { return !mean_.empty(); }
  std::size_t dim() const { return mean_.size(); }

  linalg::Vector transform(const linalg::Vector& x) const;
  linalg::Vector inverse(const linalg::Vector& z) const;

  /// Row-wise batched variants (each row one sample); `out` is resized and
  /// reuses capacity across calls. Element-wise identical to the vector
  /// overloads applied per row.
  void transform(const linalg::Matrix& x, linalg::Matrix& out) const;
  void inverse(const linalg::Matrix& z, linalg::Matrix& out) const;

  const linalg::Vector& mean() const { return mean_; }
  const linalg::Vector& std() const { return std_; }
  void set(linalg::Vector mean, linalg::Vector std);

 private:
  linalg::Vector mean_;
  linalg::Vector std_;
};

}  // namespace trdse::nn
