#include "nn/mlp.hpp"

#include <cassert>
#include <cmath>

namespace trdse::nn {

Mlp::Mlp(const MlpConfig& config, std::uint64_t seed) : config_(config) {
  assert(config.layerSizes.size() >= 2 && "need at least input and output dims");
  std::mt19937_64 rng(seed);
  const std::size_t n = config.layerSizes.size() - 1;
  layers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Activation act = (i + 1 == n) ? config.output : config.hidden;
    layers_.emplace_back(config.layerSizes[i], config.layerSizes[i + 1], act);
    layers_.back().initWeights(rng);
  }
}

std::size_t Mlp::inputDim() const {
  return layers_.empty() ? 0 : layers_.front().inDim();
}

std::size_t Mlp::outputDim() const {
  return layers_.empty() ? 0 : layers_.back().outDim();
}

linalg::Vector Mlp::forward(const linalg::Vector& x) {
  linalg::Vector h = x;
  for (auto& layer : layers_) h = layer.forward(h);
  return h;
}

linalg::Vector Mlp::predict(const linalg::Vector& x) const {
  linalg::Vector h = x;
  for (const auto& layer : layers_) h = layer.predict(h);
  return h;
}

linalg::Vector Mlp::backward(const linalg::Vector& gradOut) {
  linalg::Vector g = gradOut;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = it->backward(g);
  return g;
}

const linalg::Matrix& Mlp::forwardBatch(const linalg::Matrix& x) {
  assert(!layers_.empty());
  const linalg::Matrix* h = &x;
  for (auto& layer : layers_) h = &layer.forwardBatch(*h);
  return *h;
}

void Mlp::predictBatch(const linalg::Matrix& x, linalg::Matrix& out,
                       BatchWorkspace& ws) const {
  assert(!layers_.empty());
  const linalg::Matrix* h = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    linalg::Matrix& dst =
        (i + 1 == layers_.size()) ? out : (i % 2 == 0 ? ws.ping : ws.pong);
    layers_[i].predictBatch(*h, dst, ws.pack);
    h = &dst;
  }
}

linalg::Matrix Mlp::predictBatch(const linalg::Matrix& x) const {
  BatchWorkspace ws;
  linalg::Matrix out;
  predictBatch(x, out, ws);
  return out;
}

const linalg::Matrix& Mlp::backwardBatch(const linalg::Matrix& gradOut) {
  assert(!layers_.empty());
  const linalg::Matrix* g = &gradOut;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = &it->backwardBatch(*g);
  return *g;
}

void Mlp::zeroGrad() {
  for (auto& layer : layers_) layer.zeroGrad();
}

void Mlp::reinitialize(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (auto& layer : layers_) layer.initWeights(rng);
}

std::size_t Mlp::parameterCount() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.parameterCount();
  return n;
}

linalg::Vector Mlp::getParameters() const {
  linalg::Vector flat;
  flat.reserve(parameterCount());
  for (const auto& layer : layers_) {
    const auto& w = layer.weights();
    flat.insert(flat.end(), w.data(), w.data() + w.size());
    flat.insert(flat.end(), layer.bias().begin(), layer.bias().end());
  }
  return flat;
}

void Mlp::setParameters(const linalg::Vector& flat) {
  assert(flat.size() == parameterCount());
  std::size_t off = 0;
  for (auto& layer : layers_) {
    auto& w = layer.weights();
    std::copy(flat.begin() + static_cast<long>(off),
              flat.begin() + static_cast<long>(off + w.size()), w.data());
    off += w.size();
    std::copy(flat.begin() + static_cast<long>(off),
              flat.begin() + static_cast<long>(off + layer.bias().size()),
              layer.bias().begin());
    off += layer.bias().size();
  }
}

linalg::Vector Mlp::getGradients() const {
  linalg::Vector flat;
  flat.reserve(parameterCount());
  for (const auto& layer : layers_) {
    const auto& gw = layer.gradWeights();
    flat.insert(flat.end(), gw.data(), gw.data() + gw.size());
    flat.insert(flat.end(), layer.gradBias().begin(), layer.gradBias().end());
  }
  return flat;
}

void Mlp::setGradients(const linalg::Vector& flat) {
  assert(flat.size() == parameterCount());
  std::size_t off = 0;
  for (auto& layer : layers_) {
    auto& gw = layer.gradWeights();
    std::copy(flat.begin() + static_cast<long>(off),
              flat.begin() + static_cast<long>(off + gw.size()), gw.data());
    off += gw.size();
    std::copy(flat.begin() + static_cast<long>(off),
              flat.begin() + static_cast<long>(off + layer.gradBias().size()),
              layer.gradBias().begin());
    off += layer.gradBias().size();
  }
}

void Mlp::addToParameters(const linalg::Vector& direction, double alpha) {
  assert(direction.size() == parameterCount());
  std::size_t off = 0;
  for (auto& layer : layers_) {
    auto& w = layer.weights();
    for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] += alpha * direction[off + i];
    off += w.size();
    auto& b = layer.bias();
    for (std::size_t i = 0; i < b.size(); ++i) b[i] += alpha * direction[off + i];
    off += b.size();
  }
}

double clipGradNorm(Mlp& net, double maxNorm) {
  linalg::Vector g = net.getGradients();
  double norm = 0.0;
  for (double v : g) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > maxNorm && norm > 0.0) {
    const double scale = maxNorm / norm;
    for (double& v : g) v *= scale;
    net.setGradients(g);
  }
  return norm;
}

}  // namespace trdse::nn
