#include "nn/dense_layer.hpp"

#include <cassert>
#include <cmath>

namespace trdse::nn {

DenseLayer::DenseLayer(std::size_t inDim, std::size_t outDim, Activation act)
    : weights_(outDim, inDim),
      bias_(outDim, 0.0),
      gradW_(outDim, inDim),
      gradB_(outDim, 0.0),
      act_(act) {}

void DenseLayer::initWeights(std::mt19937_64& rng) {
  const double fanIn = static_cast<double>(inDim());
  const double fanOut = static_cast<double>(outDim());
  double limit;
  if (act_ == Activation::kRelu) {
    limit = std::sqrt(6.0 / fanIn);  // He uniform
  } else {
    limit = std::sqrt(6.0 / (fanIn + fanOut));  // Glorot uniform
  }
  std::uniform_real_distribution<double> dist(-limit, limit);
  for (std::size_t r = 0; r < weights_.rows(); ++r)
    for (std::size_t c = 0; c < weights_.cols(); ++c) weights_(r, c) = dist(rng);
  std::fill(bias_.begin(), bias_.end(), 0.0);
}

linalg::Vector DenseLayer::forward(const linalg::Vector& x) {
  assert(x.size() == inDim());
  lastInput_ = x;
  lastPre_ = matVec(weights_, x);
  for (std::size_t i = 0; i < bias_.size(); ++i) lastPre_[i] += bias_[i];
  lastOut_ = lastPre_;
  applyActivation(act_, lastOut_);
  return lastOut_;
}

linalg::Vector DenseLayer::predict(const linalg::Vector& x) const {
  assert(x.size() == inDim());
  linalg::Vector y = matVec(weights_, x);
  for (std::size_t i = 0; i < bias_.size(); ++i) y[i] += bias_[i];
  applyActivation(act_, y);
  return y;
}

linalg::Vector DenseLayer::backward(const linalg::Vector& gradOut) {
  assert(gradOut.size() == outDim());
  linalg::Vector g = gradOut;
  applyActivationGrad(act_, lastPre_, lastOut_, g);
  // Accumulate parameter gradients: dW += g * x^T, db += g.
  for (std::size_t r = 0; r < weights_.rows(); ++r) {
    const double gr = g[r];
    if (gr == 0.0) continue;
    double* gw = gradW_.row(r);
    for (std::size_t c = 0; c < weights_.cols(); ++c) gw[c] += gr * lastInput_[c];
    gradB_[r] += gr;
  }
  // dL/dx = W^T g.
  return matTVec(weights_, g);
}

const linalg::Matrix& DenseLayer::forwardBatch(const linalg::Matrix& x) {
  assert(x.cols() == inDim());
  lastInputB_ = x;
  matMulTransBBiasInto(x, weights_, bias_, lastPreB_, packB_);
  lastOutB_ = lastPreB_;
  applyActivation(act_, lastOutB_);
  return lastOutB_;
}

void DenseLayer::predictBatch(const linalg::Matrix& x, linalg::Matrix& out,
                              linalg::Matrix& packBuf) const {
  assert(x.cols() == inDim());
  matMulTransBBiasInto(x, weights_, bias_, out, packBuf);
  applyActivation(act_, out);
}

const linalg::Matrix& DenseLayer::backwardBatch(const linalg::Matrix& gradOut) {
  assert(gradOut.cols() == outDim());
  assert(gradOut.rows() == lastInputB_.rows() && "forwardBatch must precede");
  gradOutB_ = gradOut;
  applyActivationGrad(act_, lastPreB_, lastOutB_, gradOutB_);
  // dW += G^T X and db += column sums of G, both accumulated sample-ascending
  // so gradients match the per-sample backward() exactly.
  gemmAtBAccum(gradOutB_, lastInputB_, gradW_);
  addColSums(gradOutB_, gradB_);
  // dL/dX = G * W.
  matMulInto(gradOutB_, weights_, gradInB_);
  return gradInB_;
}

void DenseLayer::zeroGrad() {
  gradW_.fill(0.0);
  std::fill(gradB_.begin(), gradB_.end(), 0.0);
}

}  // namespace trdse::nn
